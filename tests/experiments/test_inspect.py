"""Tests for the tree-inspection tools."""

import pytest

from repro.diffusion.messages import DataItem
from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.inspect import (
    active_tree,
    compare_with_ideal,
    delivery_timeline,
    tree_stats,
)
from repro.experiments.metrics import MetricsCollector
from repro.experiments.runner import build_world


def converged_world(scheme="greedy", n=80, seed=5):
    cfg = ExperimentConfig.from_profile(smoke(), scheme, n, seed=seed)
    world = build_world(cfg)
    world.sim.run(until=cfg.duration)
    return world


class TestActiveTree:
    def test_tree_connects_sources_to_sink(self):
        world = converged_world()
        tree = active_tree(world)
        stats = tree_stats(tree, world.sources, world.sinks[0])
        assert stats.stranded_sources == ()
        assert stats.depth >= 1
        assert stats.n_edges >= len(world.sources)

    def test_functional_graph_out_degree_at_most_one(self):
        world = converged_world()
        tree = active_tree(world)
        assert all(tree.out_degree(n) <= 1 for n in tree.nodes)

    def test_no_sinks_raises(self):
        world = converged_world()
        world.sinks.clear()
        with pytest.raises(ValueError):
            active_tree(world)

    def test_explicit_interest_id(self):
        world = converged_world()
        tree = active_tree(world, interest_id=world.sinks[0])
        assert tree.number_of_edges() > 0


class TestTreeStats:
    def test_stranded_source_detected(self):
        import networkx as nx

        tree = nx.DiGraph()
        tree.add_edge(1, 2)
        tree.add_edge(2, 9)  # 9 = sink
        stats = tree_stats(tree, sources=[1, 7], sink=9)
        assert stats.stranded_sources == (7,)
        assert stats.depth == 2

    def test_junction_counting(self):
        import networkx as nx

        tree = nx.DiGraph()
        tree.add_edge(1, 3)
        tree.add_edge(2, 3)
        tree.add_edge(3, 9)
        stats = tree_stats(tree, sources=[1, 2], sink=9)
        assert stats.n_junctions == 1


class TestCompareWithIdeal:
    def test_distributed_tree_near_git(self):
        world = converged_world()
        cmp = compare_with_ideal(world)
        assert cmp["git_edges"] <= cmp["spt_edges"]
        # The distributed greedy tree tracks the centralized GIT within a
        # small factor (stale gradients may add a few edges).
        assert cmp["distributed_edges"] <= 2.5 * cmp["git_edges"] + 2

    def test_keys_present(self):
        cmp = compare_with_ideal(converged_world(n=60, seed=8))
        assert set(cmp) == {
            "distributed_edges",
            "spt_edges",
            "git_edges",
            "steiner_edges",
        }


class TestDeliveryTimeline:
    def test_buckets_count_deliveries(self):
        m = MetricsCollector(warmup_end=0.0)
        for i, t in enumerate([0.5, 1.5, 1.7, 9.9]):
            item = DataItem(1, i, t - 0.2)
            m.on_generated(1, item)
            m.on_delivered(1, 9, item, t)
        timeline = delivery_timeline(m, bucket=1.0, until=10.0)
        counts = dict(timeline)
        assert counts[0.0] == 1
        assert counts[1.0] == 2
        assert counts[9.0] == 1

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            delivery_timeline(MetricsCollector(0.0), bucket=0.0, until=1.0)

    def test_live_run_has_continuous_delivery(self):
        world = converged_world()
        timeline = delivery_timeline(
            world.metrics, bucket=5.0, until=world.config.duration
        )
        # After warmup, every complete 5-second bucket sees deliveries.
        late = [
            c
            for t, c in timeline
            if world.config.warmup + 5.0 <= t <= world.config.duration - 5.0
        ]
        assert late and all(c > 0 for c in late)
