"""config_from_dict must invert asdict() over the full config surface.

The service accepts untrusted config dicts (``repro client submit
--spec``), and store entries / manifests are re-executed from their
persisted identity blocks — both paths depend on the round trip being
exact and on malformed input failing loudly instead of silently running
a different experiment.
"""

import dataclasses

import pytest

from repro.diffusion.agent import DiffusionParams
from repro.experiments.config import ExperimentConfig, FailureModel, config_from_dict
from repro.experiments.store import run_key
from repro.net.channel import ChannelSpec


def _full_config():
    """Every non-default field exercised, including the channel block."""
    return ExperimentConfig(
        scheme="opportunistic",
        n_nodes=123,
        seed=987654321,
        duration=77.5,
        warmup=11.25,
        diffusion=DiffusionParams(exploratory_interval=17.0),
        n_sources=7,
        n_sinks=3,
        source_placement="random",
        aggregation="linear",
        field_size=250.0,
        range_m=35.0,
        failures=FailureModel(fraction=0.35, epoch=9.0),
        include_idle=True,
        channel=ChannelSpec(
            model="pathloss",
            tx_power_dbm=3.0,
            pathloss_exponent=2.7,
            reference_loss_db=41.5,
            noise_floor_dbm=-99.0,
            rx_sensitivity_dbm=-87.0,
            capture_threshold_db=8.0,
            capture=False,
            max_range_m=60.0,
            n_bands=2,
        ),
    )


class TestRoundTrip:
    def test_full_surface(self):
        cfg = _full_config()
        rebuilt = config_from_dict(dataclasses.asdict(cfg))
        assert rebuilt == cfg
        assert isinstance(rebuilt.diffusion, DiffusionParams)
        assert isinstance(rebuilt.failures, FailureModel)
        assert isinstance(rebuilt.channel, ChannelSpec)

    def test_round_trip_preserves_content_hash(self):
        """The rebuilt config must address the same store entry."""
        cfg = _full_config()
        assert run_key(config_from_dict(dataclasses.asdict(cfg))) == run_key(cfg)

    def test_defaults_round_trip(self):
        cfg = ExperimentConfig(
            scheme="greedy", n_nodes=50, seed=1, duration=30.0, warmup=10.0
        )
        rebuilt = config_from_dict(dataclasses.asdict(cfg))
        assert rebuilt == cfg
        assert rebuilt.failures is None
        assert rebuilt.channel == ChannelSpec()

    def test_json_round_trip(self):
        """Through actual JSON, as the service and manifests do it."""
        import json

        cfg = _full_config()
        rebuilt = config_from_dict(json.loads(json.dumps(dataclasses.asdict(cfg))))
        assert rebuilt == cfg


class TestLoudFailures:
    def test_unknown_top_level_key(self):
        data = dataclasses.asdict(_full_config())
        data["turbo"] = True
        with pytest.raises(TypeError, match="turbo"):
            config_from_dict(data)

    def test_unknown_diffusion_key(self):
        data = dataclasses.asdict(_full_config())
        data["diffusion"]["telepathy"] = 1
        with pytest.raises(TypeError, match="telepathy"):
            config_from_dict(data)

    def test_unknown_failures_key(self):
        data = dataclasses.asdict(_full_config())
        data["failures"]["severity"] = "bad"
        with pytest.raises(TypeError, match="severity"):
            config_from_dict(data)

    def test_unknown_channel_key(self):
        data = dataclasses.asdict(_full_config())
        data["channel"]["antenna_gain"] = 3.0
        with pytest.raises(TypeError, match="antenna_gain"):
            config_from_dict(data)

    def test_missing_required_key(self):
        data = dataclasses.asdict(_full_config())
        del data["seed"]
        with pytest.raises(TypeError, match="seed"):
            config_from_dict(data)

    def test_invalid_value_rejected(self):
        data = dataclasses.asdict(_full_config())
        data["scheme"] = "quantum"
        with pytest.raises(ValueError, match="scheme"):
            config_from_dict(data)

    def test_invalid_channel_model_rejected(self):
        data = dataclasses.asdict(_full_config())
        data["channel"]["model"] = "psychic"
        with pytest.raises(ValueError, match="channel model"):
            config_from_dict(data)
