"""Runner/store/CLI integration of the probe timeline, plus the
determinism contract: attaching a timeline never perturbs the run, and
the same seed yields byte-identical timelines everywhere."""

import json
import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.cli import main
from repro.experiments.config import ExperimentConfig, FailureModel, smoke
from repro.experiments.runner import run_observed
from repro.experiments.store import RunStore
from repro.obs import ObsOptions, iter_trace_lines

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def cfg(**overrides):
    scheme = overrides.pop("scheme", "greedy")
    return ExperimentConfig.from_profile(
        smoke(), scheme, 50, seed=4, duration=20.0, warmup=8.0, **overrides
    )


def timeline_dict(config, interval=None) -> dict:
    obs = ObsOptions(timeline=True, timeline_interval=interval)
    return run_observed(config, obs).timeline.as_dict()


class TestRunnerIntegration:
    def test_observed_run_carries_a_populated_timeline(self):
        observed = run_observed(cfg(), ObsOptions(timeline=True))
        tl = observed.timeline
        assert tl is not None
        # default cadence duration/10 plus the closing sample
        assert list(tl.times) == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0]
        names = tl.names()
        for expected in (
            "sim.pending_events",
            "nodes.alive",
            "data.delivered",
            "gradients.entries",
            "mac.collisions",
            "energy.total",
            "energy.data",
        ):
            assert expected in names
        # cumulative counters are nondecreasing
        for probe in ("sim.events_processed", "data.delivered", "energy.total"):
            _, vals = tl.series(probe)
            assert vals == sorted(vals)
        # the closing sample reflects the finished run
        _, delivered = tl.series("data.delivered")
        assert delivered[-1] > 0

    def test_no_timeline_by_default(self):
        observed = run_observed(cfg(), ObsOptions(profile=True))
        assert observed.timeline is None

    def test_custom_interval_and_persistence(self, tmp_path):
        out = tmp_path / "tl.json"
        obs = ObsOptions(timeline_interval=5.0, timeline_path=out)
        observed = run_observed(cfg(), obs)  # timeline_path implies timeline
        assert list(observed.timeline.times) == [0.0, 5.0, 10.0, 15.0, 20.0]
        assert observed.timeline_path == out
        saved = json.loads(out.read_text())
        assert saved == observed.timeline.as_dict()

    def test_manifest_carries_timeline_block(self, tmp_path):
        obs = ObsOptions(timeline=True, manifest_path=tmp_path / "m.json")
        observed = run_observed(cfg(), obs)
        manifest = json.loads(observed.manifest_path.read_text())
        block = manifest["timeline"]
        assert block["samples"] == observed.timeline.n_samples
        assert block["probes"] == observed.timeline.names()
        assert block["bytes"] == observed.timeline.nbytes()

    def test_first_death_scalar_matches_failure_schedule(self):
        config = cfg(failures=FailureModel(fraction=0.3, epoch=6.0))
        observed = run_observed(config, ObsOptions(timeline=True))
        m = observed.metrics
        # the failure driver flips its first batch at t=0 (no settling time)
        assert m.time_to_first_death == 0.0
        n_total = config.n_nodes
        _, dead = observed.timeline.series("nodes.dead")
        assert max(dead) > 0
        _, alive = observed.timeline.series("nodes.alive")
        assert all(a + d == n_total for a, d in zip(alive, dead))

    def test_no_failures_means_no_first_death(self):
        observed = run_observed(cfg(), ObsOptions(timeline=True))
        assert observed.metrics.time_to_first_death is None
        assert observed.timeline.derived()["time_to_first_death"] is None
        assert observed.timeline.derived()["min_alive"] == 50.0

    def test_half_delivery_scalar_present_without_timeline(self):
        m = run_observed(cfg()).metrics
        assert m.time_to_half_delivery is not None
        assert 0 < m.time_to_half_delivery <= 20.0


class TestTraceSnapshotCloseout:
    def test_gauge_snapshots_cover_the_final_partial_interval(self, tmp_path):
        # duration 20, snapshot interval 8: the old loop sampled at 8 and
        # 16 then silently dropped [16, 20); now a close-out snapshot
        # lands at exactly t=20 and nothing is scheduled past the horizon.
        path = tmp_path / "t.jsonl"
        obs = ObsOptions(trace_path=path, snapshot_interval=8.0)
        run_observed(cfg(), obs)
        times = [
            line["t"]
            for line in iter_trace_lines(path)
            if line.get("type") == "gauges"
        ]
        assert times == [8.0, 16.0, 20.0]

    def test_exact_division_has_no_duplicate_horizon_snapshot(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs = ObsOptions(trace_path=path, snapshot_interval=5.0)
        run_observed(cfg(), obs)
        times = [
            line["t"]
            for line in iter_trace_lines(path)
            if line.get("type") == "gauges"
        ]
        assert times == [5.0, 10.0, 15.0, 20.0]


class TestDeterminism:
    def test_metrics_bit_identical_with_and_without_timeline(self):
        plain = run_observed(cfg()).metrics
        timed = run_observed(cfg(), ObsOptions(timeline=True)).metrics
        assert timed == plain

    def test_timeline_identical_across_audit_toggle(self):
        base = run_observed(cfg(), ObsOptions(timeline=True)).timeline
        audited = run_observed(cfg(), ObsOptions(timeline=True, audit=True)).timeline
        assert audited.as_dict() == base.as_dict()

    def test_timeline_identical_serial_vs_subprocess(self):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        serial = timeline_dict(cfg())
        with ProcessPoolExecutor(
            max_workers=1, mp_context=mp.get_context("fork")
        ) as pool:
            parallel = pool.submit(timeline_dict, cfg()).result()
        assert parallel == serial

    def test_same_seed_same_timeline(self):
        assert timeline_dict(cfg()) == timeline_dict(cfg())


class TestStoreTimelines:
    def test_put_get_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        config = cfg()
        observed = run_observed(config, ObsOptions(timeline=True))
        store.put(config, observed.metrics)
        store.put_timeline(config, observed.timeline)
        back = store.get_timeline(config)
        assert back is not None
        for key in ("times", "probes", "interval", "duration"):
            assert back[key] == observed.timeline.as_dict()[key]

    def test_missing_timeline_is_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.get_timeline(cfg()) is None

    def test_rm_removes_the_sibling_timeline(self, tmp_path):
        from repro.experiments.store import run_key

        store = RunStore(tmp_path)
        config = cfg()
        observed = run_observed(config, ObsOptions(timeline=True))
        store.put(config, observed.metrics)
        store.put_timeline(config, observed.timeline)
        assert store.rm([run_key(config)]) == 1
        assert store.get_timeline(config) is None
        assert not any(store.timelines_dir.glob("*.json"))

    def test_gc_prunes_orphan_timelines(self, tmp_path):
        store = RunStore(tmp_path)
        config = cfg()
        observed = run_observed(config, ObsOptions(timeline=True))
        store.put(config, observed.metrics)
        store.put_timeline(config, observed.timeline)
        store.timelines_dir.joinpath("0" * 64 + ".json").write_text(
            json.dumps(observed.timeline.as_dict())
        )
        stats = store.gc()
        assert stats["timelines_kept"] == 1
        assert stats["timelines_removed"] == 1
        assert store.get_timeline(config) is not None


class TestCli:
    def test_run_timeline_prints_sparkline_summary(self, capsys):
        rc = main(
            ["run", "-n", "40", "--duration", "15", "--warmup", "6", "--timeline"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "timeline:" in out
        assert "nodes.alive" in out

    def test_timeline_verb_renders_saved_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "tl.json"
        assert main(
            [
                "run", "-n", "40", "--duration", "15", "--warmup", "6",
                "--timeline-out", str(out_path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["timeline", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "source: timeline artifact" in out
        assert "energy.total" in out

    def test_timeline_verb_json_and_chrome_trace(self, tmp_path, capsys):
        tl_path = tmp_path / "tl.json"
        main(
            [
                "run", "-n", "40", "--duration", "15", "--warmup", "6",
                "--timeline-out", str(tl_path),
            ]
        )
        capsys.readouterr()
        trace_out = tmp_path / "chrome.json"
        assert main(
            ["timeline", str(tl_path), "--json", "--chrome-trace", str(trace_out)]
        ) == 0
        out = capsys.readouterr().out
        assert json.loads(out) == json.loads(tl_path.read_text())
        # the exported chrome trace is itself a valid timeline target
        assert main(["timeline", str(trace_out)]) == 0
        assert "source: chrome trace" in capsys.readouterr().out

    def test_timeline_verb_reads_store_entry(self, tmp_path, capsys):
        from repro.experiments.store import run_key

        store_dir = tmp_path / "runs"
        assert main(
            [
                "run", "-n", "40", "--duration", "15", "--warmup", "6",
                "--timeline", "--store", str(store_dir),
            ]
        ) == 0
        capsys.readouterr()
        from repro.experiments.config import fast

        config = ExperimentConfig.from_profile(
            fast(), "greedy", 40, seed=1, duration=15.0, warmup=6.0
        )
        entry = store_dir / "runs" / f"{run_key(config)}.json"
        assert entry.exists()
        assert main(["timeline", str(entry)]) == 0
        out = capsys.readouterr().out
        assert "source: store timeline" in out
        assert "data.delivered" in out

    def test_timeline_verb_rejects_figure_without_cell(self, tmp_path, capsys):
        fig = tmp_path / "fig.json"
        fig.write_text(json.dumps({"figure_id": "fig5", "cells": []}))
        assert main(["timeline", str(fig)]) == 2
        assert "--cell" in capsys.readouterr().err

    def test_timeline_verb_unknown_file(self, capsys):
        assert main(["timeline", "/nonexistent/tl.json"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_diff_detects_timeline_divergence(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        for path, n in ((a, "40"), (b, "45")):
            main(
                [
                    "run", "-n", n, "--duration", "15", "--warmup", "6",
                    "--timeline-out", str(path),
                ]
            )
        capsys.readouterr()
        assert main(["diff", str(a), str(a)]) == 0
        assert main(["diff", str(a), str(b)]) == 1
