"""Small-scale executions of the figure harnesses (full fidelity runs
live in benchmarks/)."""

import pytest

from repro.experiments.config import smoke
from repro.experiments.figures import FIGURES, figure5, figure9, git_vs_spt_table


class TestFigureHarness:
    def test_registry_covers_all_evaluation_figures(self):
        assert set(FIGURES) == {
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "large-density",
            "channel-density",
        }

    def test_figure5_tiny(self):
        result = figure5(smoke(), densities=(50,), trials=1)
        assert result.figure_id == "fig5"
        assert result.xs() == [50.0]
        assert {c.scheme for c in result.cells} == {"opportunistic", "greedy"}
        for c in result.cells:
            assert c.energy > 0
            assert 0 <= c.ratio <= 1

    def test_figure9_tiny(self):
        result = figure9(smoke(), source_counts=(2,), n_nodes=60, trials=1)
        assert result.xs() == [2.0]
        assert all(c.n_runs == 1 for c in result.cells)

    def test_savings_computable(self):
        result = figure5(smoke(), densities=(60,), trials=1)
        s = result.energy_savings(60)
        assert -1.0 < s < 1.0


class TestGitVsSptTable:
    def test_rows_cover_all_placements(self):
        rows = git_vs_spt_table(n_nodes=(80,), n_sources=3, trials=2, seed=1)
        assert {r["placement"] for r in rows} == {
            "event-radius",
            "random-sources",
            "corner",
        }
        for r in rows:
            assert r["mean_spt_cost"] >= r["mean_git_cost"] > 0
