"""Wire-size constants and their cross-module consistency."""

from repro.aggregation.functions import LinearAggregation, PerfectAggregation
from repro.constants import CONTROL_SIZE, EVENT_SIZE
from repro.diffusion import messages


class TestWireSizes:
    def test_paper_values(self):
        assert EVENT_SIZE == 64
        assert CONTROL_SIZE == 36

    def test_messages_reexport(self):
        assert messages.EVENT_SIZE is EVENT_SIZE
        assert messages.CONTROL_SIZE is CONTROL_SIZE

    def test_linear_item_plus_header_is_one_event(self):
        # 28-byte item + 36-byte header == one 64-byte event packet: the
        # paper's sizes are internally consistent and so are ours.
        lin = LinearAggregation()
        assert lin.item_size + lin.header_size == EVENT_SIZE
        assert lin.size(1) == PerfectAggregation().size(1)
