"""Documentation consistency, in-process (mirrors the CI docs job).

Runs the same checks as ``tools/check_docs.py`` — broken intra-repo
markdown links and docs/API.md package coverage — plus a staleness check
against the generator, so a docstring or ``__all__`` change that forgets
to regenerate docs/API.md fails here, not in review.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load(name: str):
    path = REPO_ROOT / "tools" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


check_docs = _load("check_docs")


def test_no_broken_intra_repo_links():
    assert check_docs.check_links() == []


def test_api_md_covers_every_public_package():
    assert check_docs.check_api_coverage() == []


def test_public_package_scan_finds_the_core_packages():
    pkgs = check_docs.public_packages()
    for expected in ("repro", "repro.sim", "repro.net", "repro.diffusion",
                     "repro.experiments", "repro.obs"):
        assert expected in pkgs, f"{expected} missing from package scan"


def test_link_checker_catches_a_broken_link(tmp_path, monkeypatch):
    """The checker must actually fail on rot, not vacuously pass."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [the design](DESIGN.md) and [gone](docs/NOPE.md)\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    errors = check_docs.check_links()
    assert len(errors) == 2  # DESIGN.md missing too in the sandbox
    assert any("NOPE.md" in e for e in errors)


def test_api_md_is_not_stale():
    gen = _load("gen_api_docs")
    current = (REPO_ROOT / "docs" / "API.md").read_text()
    assert current == gen.render(), (
        "docs/API.md is stale — regenerate with: "
        "PYTHONPATH=src python tools/gen_api_docs.py"
    )
