"""Property-based tests for the weighted set-cover solvers."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.setcover import (
    WeightedSubset,
    exact_weighted_set_cover,
    greedy_weighted_set_cover,
    transform_to_sources,
)


@st.composite
def instances(draw, max_elems=7, max_subsets=9):
    """A coverable weighted set-cover instance."""
    n = draw(st.integers(min_value=1, max_value=max_elems))
    universe = list(range(n))
    k = draw(st.integers(min_value=0, max_value=max_subsets - 1))
    family = []
    for _ in range(k):
        elems = draw(st.sets(st.sampled_from(universe), min_size=1))
        weight = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
        family.append(WeightedSubset(frozenset(elems), weight))
    # Guarantee coverability with one (expensive) full subset.
    family.append(WeightedSubset(frozenset(universe), 20.0))
    return universe, family


class TestGreedyProperties:
    @given(instances())
    @settings(max_examples=80)
    def test_cover_is_complete(self, instance):
        universe, family = instance
        cover = greedy_weighted_set_cover(universe, family)
        covered = frozenset().union(*(family[i].elements for i in cover.chosen))
        assert covered >= frozenset(universe)

    @given(instances())
    @settings(max_examples=80)
    def test_no_redundant_subset_survives_pruning(self, instance):
        universe, family = instance
        cover = greedy_weighted_set_cover(universe, family)
        uni = frozenset(universe)
        for idx in cover.chosen:
            others = frozenset().union(
                *(family[j].elements for j in cover.chosen if j != idx), frozenset()
            )
            assert not (uni & family[idx].elements) <= others

    @given(instances())
    @settings(max_examples=80)
    def test_weight_equals_sum_of_chosen(self, instance):
        universe, family = instance
        cover = greedy_weighted_set_cover(universe, family)
        assert cover.weight == sum(family[i].weight for i in cover.chosen)

    @given(instances(max_elems=6, max_subsets=7))
    @settings(max_examples=50, deadline=None)
    def test_ln_d_plus_one_approximation_bound(self, instance):
        """The classical guarantee: greedy <= (ln d + 1) * OPT where d is
        the largest subset size (checked against the exact solver)."""
        universe, family = instance
        greedy = greedy_weighted_set_cover(universe, family)
        exact = exact_weighted_set_cover(universe, family)
        d = max(len(s.elements) for s in family)
        bound = (math.log(d) + 1.0) * exact.weight + 1e-9
        assert greedy.weight <= bound

    @given(instances())
    @settings(max_examples=50)
    def test_deterministic(self, instance):
        universe, family = instance
        a = greedy_weighted_set_cover(universe, family)
        b = greedy_weighted_set_cover(universe, family)
        assert a == b


class TestTransformProperties:
    @given(instances(max_elems=6))
    @settings(max_examples=50)
    def test_transform_preserves_cost_ratio(self, instance):
        _universe, family = instance
        source_of = {e: e % 2 for s in family for e in s.elements}
        transformed = transform_to_sources(family, source_of)
        for before, after in zip(family, transformed):
            r_before = before.weight / len(before.elements)
            r_after = after.weight / len(after.elements)
            assert abs(r_before - r_after) < 1e-9
