"""Property-based tests for the centralized tree algorithms."""

import random

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.git import greedy_incremental_tree
from repro.trees.spt import shortest_path_tree, tree_cost, validate_tree
from repro.trees.steiner import steiner_tree_kmb


@st.composite
def connected_graph_with_terminals(draw):
    """A random connected graph plus a sink and 1..5 distinct sources."""
    n = draw(st.integers(min_value=3, max_value=18))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    g = nx.gnp_random_graph(n, 0.35, seed=seed)
    # Force connectivity by threading a random spanning path.
    order = list(range(n))
    rng.shuffle(order)
    nx.add_path(g, order)
    k = draw(st.integers(min_value=1, max_value=min(5, n - 1)))
    nodes = rng.sample(range(n), k + 1)
    return g, nodes[0], nodes[1:]


class TestStructuralInvariants:
    @given(connected_graph_with_terminals())
    @settings(max_examples=60, deadline=None)
    def test_spt_is_valid_tree(self, case):
        g, sink, sources = case
        tree = shortest_path_tree(g, sink, sources)
        validate_tree(tree, sink, sources)

    @given(connected_graph_with_terminals())
    @settings(max_examples=60, deadline=None)
    def test_git_is_valid_tree(self, case):
        g, sink, sources = case
        tree = greedy_incremental_tree(g, sink, sources, order="nearest")
        validate_tree(tree, sink, sources)

    @given(connected_graph_with_terminals())
    @settings(max_examples=60, deadline=None)
    def test_steiner_is_valid_tree(self, case):
        g, sink, sources = case
        tree = steiner_tree_kmb(g, [sink, *sources])
        validate_tree(tree, sink, sources)

    @given(connected_graph_with_terminals())
    @settings(max_examples=60, deadline=None)
    def test_all_tree_edges_exist_in_graph(self, case):
        g, sink, sources = case
        for builder in (
            lambda: shortest_path_tree(g, sink, sources),
            lambda: greedy_incremental_tree(g, sink, sources, order="nearest"),
            lambda: steiner_tree_kmb(g, [sink, *sources]),
        ):
            tree = builder()
            assert all(g.has_edge(u, v) for u, v in tree.edges)


class TestCostRelations:
    @given(connected_graph_with_terminals())
    @settings(max_examples=60, deadline=None)
    def test_git_within_sum_of_distances(self, case):
        # GIT grafts each terminal at distance <= its shortest distance to
        # the sink, so its total cost is bounded by the *sum* of per-source
        # sink distances.  (It is NOT always <= the SPT union's cost: the
        # union shares edges between sources, and hypothesis finds graphs
        # where greedy grafting loses to that sharing.)
        g, sink, sources = case
        git = greedy_incremental_tree(g, sink, sources, order="nearest")
        dist = nx.single_source_shortest_path_length(g, sink)
        assert tree_cost(git) <= sum(dist[s] for s in set(sources) - {sink})

    @given(connected_graph_with_terminals())
    @settings(max_examples=60, deadline=None)
    def test_trees_at_least_spanning_lower_bound(self, case):
        # Any tree spanning k+1 terminals needs >= k edges.
        g, sink, sources = case
        k = len(set(sources) - {sink})
        for tree in (
            shortest_path_tree(g, sink, sources),
            greedy_incremental_tree(g, sink, sources, order="nearest"),
            steiner_tree_kmb(g, [sink, *sources]),
        ):
            assert tree_cost(tree) >= k

    @given(connected_graph_with_terminals())
    @settings(max_examples=40, deadline=None)
    def test_single_source_all_equal_shortest_path(self, case):
        g, sink, sources = case
        source = sources[0]
        d = nx.shortest_path_length(g, source, sink)
        assert tree_cost(shortest_path_tree(g, sink, [source])) == d
        assert tree_cost(greedy_incremental_tree(g, sink, [source])) == d
        assert tree_cost(steiner_tree_kmb(g, [sink, source])) == d
