"""Property tests for the run-store content hash: stable across process
restarts, insensitive to dict ordering, and sensitive to every config
field."""

import json
import os
import subprocess
import sys
from dataclasses import fields, replace
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.diffusion.agent import DiffusionParams
from repro.experiments.config import ExperimentConfig, FailureModel, smoke
from repro.experiments.store import canonical_json, config_payload, run_key
from repro.net.channel import ChannelSpec


def _cfg(**overrides) -> ExperimentConfig:
    return ExperimentConfig.from_profile(
        smoke(), "greedy", 50, seed=1, duration=8.0, warmup=3.0, **overrides
    )


def _shuffled(obj, rng):
    """Deep-copy ``obj`` with every dict's insertion order randomized."""
    if isinstance(obj, dict):
        items = list(obj.items())
        rng.shuffle(items)
        return {k: _shuffled(v, rng) for k, v in items}
    if isinstance(obj, list):
        return [_shuffled(v, rng) for v in obj]
    return obj


class TestDictOrderInsensitivity:
    @given(st.randoms(use_true_random=False))
    @settings(max_examples=30)
    def test_canonical_json_ignores_insertion_order(self, rng):
        payload = config_payload(_cfg(failures=FailureModel(fraction=0.2, epoch=6.0)))
        assert canonical_json(_shuffled(payload, rng)) == canonical_json(payload)

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.integers(), st.floats(allow_nan=False, allow_infinity=False),
                      st.text(max_size=8), st.none()),
            max_size=8,
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60)
    def test_arbitrary_dicts_canonicalize_order_free(self, d, rng):
        assert canonical_json(_shuffled(d, rng)) == canonical_json(d)


class TestCrossProcessStability:
    def test_key_identical_in_a_fresh_interpreter(self):
        """A process restart (fresh hash randomization, fresh imports)
        must produce the same key for the same config."""
        cfg = _cfg(
            n_sources=3,
            n_sinks=2,
            source_placement="random",
            aggregation="linear",
            failures=FailureModel(fraction=0.25, epoch=4.0),
        )
        here = run_key(cfg)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        program = (
            "from repro.experiments.config import ExperimentConfig, FailureModel, smoke\n"
            "from repro.experiments.store import run_key\n"
            "cfg = ExperimentConfig.from_profile(\n"
            "    smoke(), 'greedy', 50, seed=1, duration=8.0, warmup=3.0,\n"
            "    n_sources=3, n_sinks=2, source_placement='random',\n"
            "    aggregation='linear',\n"
            "    failures=FailureModel(fraction=0.25, epoch=4.0))\n"
            "print(run_key(cfg))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"
        out = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == here

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_key_deterministic_for_any_seed(self, seed):
        cfg = replace(_cfg(), seed=seed)
        assert run_key(cfg) == run_key(replace(cfg))


class TestFieldSensitivity:
    #: one safe mutation per ExperimentConfig field (values satisfy
    #: __post_init__ and differ from _cfg()'s baseline)
    MUTATIONS = {
        "scheme": "opportunistic",
        "n_nodes": 60,
        "seed": 2,
        "duration": 9.0,
        "warmup": 3.5,
        "diffusion": DiffusionParams(exploratory_interval=11.0),
        "n_sources": 4,
        "n_sinks": 2,
        "source_placement": "random",
        "aggregation": "linear",
        "field_size": 210.0,
        "range_m": 41.0,
        "failures": FailureModel(fraction=0.2, epoch=6.0),
        "include_idle": True,
        "channel": ChannelSpec(model="pathloss"),
    }

    def test_mutations_cover_every_field(self):
        assert set(self.MUTATIONS) == {f.name for f in fields(ExperimentConfig)}

    def test_any_single_field_change_changes_the_key(self):
        base = _cfg()
        base_key = run_key(base)
        seen = {base_key}
        for name, value in self.MUTATIONS.items():
            mutated_key = run_key(replace(base, **{name: value}))
            assert mutated_key != base_key, f"field {name} not in the hash"
            seen.add(mutated_key)
        # all mutations are pairwise distinct too (no hash collisions
        # between unrelated single-field changes)
        assert len(seen) == len(self.MUTATIONS) + 1

    def test_nested_diffusion_field_changes_key(self):
        base = _cfg()
        tweaked = replace(
            base, diffusion=replace(base.diffusion, aggregation_delay=0.6)
        )
        assert run_key(tweaked) != run_key(base)

    def test_code_version_changes_key(self, monkeypatch):
        base = _cfg()
        before = run_key(base)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert run_key(base) != before

    def test_payload_is_json_round_trip_stable(self):
        payload = config_payload(_cfg())
        assert json.loads(canonical_json(payload)) == payload
