"""Property-based tests for the MAC layer: conservation of frames."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.energy import EnergyMeter, EnergyParams
from repro.net.mac import CsmaMac, MacParams
from repro.net.packet import BROADCAST
from repro.net.radio import Channel, Radio, RadioParams
from repro.sim import RngRegistry, Simulator, Tracer


def clique(n_nodes, seed):
    """n MACs all in range of one another."""
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    channel = Channel(sim, tracer, RadioParams(range_m=1000.0))
    rngs = RngRegistry(seed)
    macs = []
    for i in range(n_nodes):
        meter = EnergyMeter(EnergyParams())
        radio = Radio(i, float(i), 0.0, channel, meter)
        macs.append(CsmaMac(sim, radio, MacParams(), rngs.stream(f"m{i}"), tracer))
    return sim, tracer, macs


class TestConservation:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_unicast_frames_accounted_exactly_once(self, n_nodes, n_frames, seed):
        """Every queued unicast either gets ACKed or is dropped after the
        retry limit — nothing vanishes, nothing is double-counted."""
        sim, tracer, macs = clique(n_nodes, seed)
        delivered = []
        for mac in macs:
            mac.receive_callback = lambda p, f: delivered.append(p)
        accepted = 0
        for k in range(n_frames):
            sender = macs[k % (n_nodes - 1)]
            if sender.send(f"p{k}", n_nodes - 1, 64):
                accepted += 1
        sim.run()
        acked = tracer.value("mac.acked")
        dropped = tracer.value("mac.drop_retry")
        assert acked + dropped == accepted

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_broadcasts_from_one_sender_all_heard(self, n_nodes, n_frames, seed):
        """A single sender's broadcasts never collide with each other, so
        every receiver hears every frame exactly once, in order."""
        sim, _tracer, macs = clique(n_nodes, seed)
        heard: dict[int, list] = {i: [] for i in range(1, n_nodes)}
        for i in range(1, n_nodes):
            macs[i].receive_callback = lambda p, f, i=i: heard[i].append(p)
        for k in range(n_frames):
            assert macs[0].send(k, BROADCAST, 36)
        sim.run()
        for i in range(1, n_nodes):
            assert heard[i] == list(range(n_frames))

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_simulation_always_terminates_idle(self, n_nodes, seed):
        """No self-sustaining MAC activity: the event queue drains."""
        sim, _tracer, macs = clique(n_nodes, seed)
        for i, mac in enumerate(macs):
            mac.send(i, BROADCAST, 64)
            mac.send(i, (i + 1) % n_nodes, 64)
        sim.run()
        assert sim.pending_count() == 0
