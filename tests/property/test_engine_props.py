"""Property-based tests for the DES kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


@st.composite
def schedules(draw):
    """A list of (delay, id) pairs to schedule from t=0."""
    n = draw(st.integers(min_value=0, max_value=60))
    return [
        (draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False)), i)
        for i in range(n)
    ]


class TestEventOrdering:
    @given(schedules())
    @settings(max_examples=60)
    def test_fire_times_non_decreasing(self, sched):
        sim = Simulator()
        fired = []
        for delay, tag in sched:
            sim.schedule(delay, lambda t=tag: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(sched)

    @given(schedules())
    @settings(max_examples=40)
    def test_equal_times_preserve_schedule_order(self, sched):
        sim = Simulator()
        fired = []
        for delay, tag in sched:
            sim.schedule(delay, lambda t=tag: fired.append(t))
        sim.run()
        # Stable sort of tags by (time, insertion order) == firing order.
        expected = [tag for _d, tag in sorted(sched, key=lambda p: p[0])]
        assert fired == expected

    @given(schedules(), st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=40)
    def test_run_until_splits_cleanly(self, sched, horizon):
        """Running to a horizon then to the end fires exactly the same
        events, in the same order, as one uninterrupted run."""
        def run(split):
            sim = Simulator()
            fired = []
            for delay, tag in sched:
                sim.schedule(delay, lambda t=tag: fired.append(t))
            if split is not None:
                sim.run(until=split)
            sim.run()
            return fired

        assert run(horizon) == run(None)

    @given(schedules(), st.sets(st.integers(min_value=0, max_value=59)))
    @settings(max_examples=40)
    def test_cancellation_removes_exactly_the_cancelled(self, sched, to_cancel):
        sim = Simulator()
        fired = []
        handles = {}
        for delay, tag in sched:
            handles[tag] = sim.schedule(delay, lambda t=tag: fired.append(t))
        for tag in to_cancel:
            if tag in handles:
                handles[tag].cancel()
        sim.run()
        expected = {tag for _d, tag in sched} - to_cancel
        assert set(fired) == expected
