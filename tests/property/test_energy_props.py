"""Property-based tests for energy accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.energy import EnergyMeter, EnergyParams

receptions = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),  # start
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),    # duration
    ),
    max_size=40,
)


class TestEnergyMeterProperties:
    @given(receptions)
    @settings(max_examples=80)
    def test_rx_time_never_exceeds_span(self, rxs):
        """Merged receive time is physical: bounded by the time span
        actually covered by receptions (receptions are fed in
        chronological order, as the radio does)."""
        meter = EnergyMeter(EnergyParams())
        rxs = sorted(rxs)
        for start, dur in rxs:
            meter.note_rx(start, dur)
        if rxs:
            span = max(s + d for s, d in rxs) - min(s for s, d in rxs)
            assert meter.rx_time <= span + 1e-9
        assert meter.rx_time >= 0.0

    @given(receptions)
    @settings(max_examples=80)
    def test_rx_time_at_least_longest_single_frame(self, rxs):
        meter = EnergyMeter(EnergyParams())
        rxs = sorted(rxs)
        for start, dur in rxs:
            meter.note_rx(start, dur)
        if rxs:
            assert meter.rx_time >= max(d for _s, d in rxs) - 1e-9

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), max_size=30),
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_total_energy_monotone_in_time(self, txs, total_time):
        meter = EnergyMeter(EnergyParams())
        for d in txs:
            meter.note_tx(d)
        e1 = meter.total_energy_j(total_time)
        e2 = meter.total_energy_j(total_time + 10.0)
        assert e2 >= e1 - 1e-12

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), max_size=30))
    @settings(max_examples=60)
    def test_communication_energy_nonnegative_and_additive(self, txs):
        meter = EnergyMeter(EnergyParams())
        for d in txs:
            meter.note_tx(d)
        expected = EnergyParams().tx_power_w * sum(txs)
        assert abs(meter.communication_energy_j() - expected) < 1e-9
