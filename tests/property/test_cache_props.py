"""Property-based tests for the diffusion caches and gradient table."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.cache import ExploratoryCache, SeenCache
from repro.diffusion.gradient import GradientTable

keys = st.integers(min_value=0, max_value=30)


class TestSeenCacheProperties:
    @given(st.lists(keys, max_size=200), st.integers(min_value=1, max_value=16))
    @settings(max_examples=60)
    def test_no_key_reported_new_twice_within_capacity_window(self, seq, cap):
        """Within any window smaller than the capacity, a key is new at
        most once (the cache only forgets after >= cap distinct keys)."""
        cache = SeenCache(capacity=cap)
        last_new_at: dict[int, int] = {}
        distinct_since: dict[int, set] = {}
        for i, k in enumerate(seq):
            is_new = cache.check_and_add(k)
            if is_new and k in last_new_at:
                # The cache must have seen >= cap distinct other keys since.
                assert len(distinct_since[k]) >= cap
            if is_new:
                last_new_at[k] = i
                distinct_since[k] = set()
            for other in distinct_since.values():
                other.add(k)

    @given(st.lists(keys, max_size=200))
    @settings(max_examples=60)
    def test_duplicate_immediately_after_insert_never_new(self, seq):
        cache = SeenCache(capacity=1024)
        seen = set()
        for k in seq:
            is_new = cache.check_and_add(k)
            assert is_new == (k not in seen)
            seen.add(k)


class TestExploratoryCacheProperties:
    notes = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),   # neighbor
            st.floats(min_value=0.5, max_value=20.0, allow_nan=False),  # cost
        ),
        min_size=1,
        max_size=30,
    )

    @given(notes)
    @settings(max_examples=60)
    def test_lowest_cost_choice_is_global_min(self, notes):
        cache = ExploratoryCache()
        t = 0.0
        for neighbor, cost in notes:
            cache.note_exploratory("k", neighbor, cost, t)
            t += 0.01
        choice = cache.lowest_cost_choice("k")
        assert choice.cost == min(c for _n, c in notes)

    @given(notes)
    @settings(max_examples=60)
    def test_first_flag_exactly_once(self, notes):
        cache = ExploratoryCache()
        firsts = sum(
            cache.note_exploratory("k", n, c, i * 0.01)
            for i, (n, c) in enumerate(notes)
        )
        assert firsts == 1

    @given(notes)
    @settings(max_examples=60)
    def test_incremental_costs_never_increase_choice(self, notes):
        cache = ExploratoryCache()
        for i, (n, c) in enumerate(notes):
            cache.note_exploratory("k", n, c, i * 0.01)
        before = cache.lowest_cost_choice("k").cost
        cache.note_incremental_cost("k", 99, before + 5.0, 1.0)
        assert cache.lowest_cost_choice("k").cost == before
        cache.note_incremental_cost("k", 98, before - 0.25, 1.1)
        assert cache.lowest_cost_choice("k").cost == before - 0.25


class TestGradientTableProperties:
    ops = st.lists(
        st.tuples(st.sampled_from(["refresh", "reinforce", "degrade"]), keys),
        max_size=60,
    )

    @given(ops)
    @settings(max_examples=80)
    def test_at_most_one_data_gradient(self, ops):
        """The single-outgoing invariant: whatever the operation sequence,
        at most one live data gradient exists."""
        table = GradientTable(gradient_timeout=100.0)
        now = 0.0
        for op, neighbor in ops:
            now += 0.1
            if op == "refresh":
                table.refresh_exploratory(neighbor, now)
            elif op == "reinforce":
                table.reinforce(neighbor, now)
            else:
                table.degrade(neighbor)
            assert len(table.data_neighbors(now)) <= 1

    @given(ops)
    @settings(max_examples=60)
    def test_expiry_removes_only_stale(self, ops):
        table = GradientTable(gradient_timeout=1.0)
        now = 0.0
        for op, neighbor in ops:
            now += 0.1
            if op == "refresh":
                table.refresh_exploratory(neighbor, now)
            elif op == "reinforce":
                table.reinforce(neighbor, now)
            else:
                table.degrade(neighbor)
        table.expire(now)
        for g in table.all():
            assert g.expires_at > now
