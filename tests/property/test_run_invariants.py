"""End-to-end invariants over random seeds (whole-run properties)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.runner import build_world


@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["greedy", "opportunistic"]),
)
@settings(max_examples=6, deadline=None)
def test_whole_run_invariants(seed, scheme):
    """For any seed: deliveries are a subset of generations, delays are
    physical, energy is non-negative, and PHY/MAC counters are
    consistent."""
    cfg = ExperimentConfig.from_profile(smoke(), scheme, 60, seed=seed, n_sources=3)
    world = build_world(cfg)
    world.sim.run(until=cfg.duration)

    metrics = world.metrics
    # Deliveries only of generated items, each counted once per sink.
    generated = set()
    for src in world.sources:
        agent = world.agents[src]
        for state in agent.source_for.values():
            generated |= {(src, seq) for seq in range(1, state.data_seq + 1)}
    for bucket in metrics.delivered.values():
        assert bucket <= generated

    # Delays are positive and bounded by the run length.
    assert all(0.0 < d < cfg.duration for d in metrics.delays)
    assert 0.0 <= metrics.delivery_ratio() <= 1.0

    # Energy accounting is physical on every node.
    for node in world.nodes:
        assert node.energy.tx_time >= 0.0
        assert node.energy.rx_time >= 0.0
        assert node.energy.tx_time + node.energy.rx_time <= 2 * cfg.duration

    # Counter consistency: MAC receptions never exceed PHY deliveries,
    # ACKs never exceed unicast transmissions.
    c = world.tracer.counters
    assert c.get("mac.rx", 0) <= c.get("radio.rx", 0)
    assert c.get("mac.acked", 0) <= c.get("mac.tx", 0)
    assert c.get("radio.tx", 0) > 0
