"""Scalar-vs-vector PHY kernel equivalence.

The vectorized kernel (``Channel(kernel="vector")``, auto-selected by
the runner at >= 1000 nodes) must be a pure performance
transformation: for any config, seed, and
observability setup, its :class:`~repro.experiments.metrics.RunMetrics`
— including per-class energy attribution, lifetime metrics, and every
counter — and its probe timelines must be *bit-identical* to the scalar
reference kernel's.

The matrix here crosses 10+ seeds with three network regimes (sparse,
the paper's densest field, and a beyond-paper large field) and with the
audit / timeline observability combinations.  Running the full cross
product would take minutes, so each seed draws one regime and one
observability combo round-robin — together the seeds cover every
(regime, combo) pair while each pair still sees multiple seeds.
"""

import dataclasses

import pytest

from repro.diffusion.agent import DiffusionParams
from repro.experiments.config import ExperimentConfig, FailureModel
from repro.experiments.runner import run_observed
from repro.net.channel import ChannelSpec
from repro.obs import ObsOptions

#: (name, config-overrides) — durations trimmed so the matrix stays fast
REGIMES = {
    "sparse": dict(n_nodes=50, field_size=200.0, duration=10.0, warmup=4.0),
    "paper-max": dict(n_nodes=350, field_size=200.0, duration=4.0, warmup=2.0),
    "large": dict(n_nodes=800, field_size=500.0, duration=4.0, warmup=2.0),
}

#: (audit, timeline) observability combinations
OBS_COMBOS = [(False, False), (True, False), (False, True), (True, True)]

SEEDS = list(range(10))


def _config(seed: int, regime: str) -> ExperimentConfig:
    over = REGIMES[regime]
    return ExperimentConfig(
        scheme=("greedy", "opportunistic")[seed % 2],
        seed=seed,
        diffusion=DiffusionParams(exploratory_interval=6.0),
        **over,
    )


def _run(cfg: ExperimentConfig, kernel: str, audit: bool, timeline: bool):
    obs = ObsOptions(audit=audit, timeline=timeline) if (audit or timeline) else None
    return run_observed(cfg, obs, kernel=kernel)


@pytest.mark.parametrize("seed", SEEDS)
def test_kernels_bit_identical(seed):
    regime = list(REGIMES)[seed % len(REGIMES)]
    audit, timeline = OBS_COMBOS[seed % len(OBS_COMBOS)]
    cfg = _config(seed, regime)

    scalar = _run(cfg, "scalar", audit, timeline)
    vector = _run(cfg, "vector", audit, timeline)

    assert dataclasses.asdict(scalar.metrics) == dataclasses.asdict(vector.metrics)
    # Cohort accounting must agree too: both kernels count one logical
    # event per receiver per fan-out phase.
    assert scalar.events_processed == vector.events_processed
    assert scalar.cancelled_skipped == vector.cancelled_skipped
    if timeline:
        assert scalar.timeline is not None and vector.timeline is not None
        assert scalar.timeline.as_dict() == vector.timeline.as_dict()
    if audit:
        assert scalar.audit == vector.audit


def test_kernels_bit_identical_under_failures():
    """Failure dynamics exercise the liveness fast path (n_down) of the
    vector kernel: nodes dropping mid-flight, recovering, and re-entering
    fan-outs must not perturb a single counter."""
    cfg = ExperimentConfig(
        scheme="greedy",
        n_nodes=80,
        seed=123,
        duration=20.0,
        warmup=8.0,
        failures=FailureModel(fraction=0.2, epoch=5.0),
        diffusion=DiffusionParams(exploratory_interval=6.0),
    )
    scalar = _run(cfg, "scalar", audit=True, timeline=True)
    vector = _run(cfg, "vector", audit=True, timeline=True)
    assert dataclasses.asdict(scalar.metrics) == dataclasses.asdict(vector.metrics)
    assert scalar.timeline.as_dict() == vector.timeline.as_dict()
    m = scalar.metrics
    assert m.counters.get("node.fail", 0) > 0  # the failure path actually ran


#: pathloss spec variants the kernel-equivalence matrix cycles through:
#: the default capture channel, multi-band, capture off (disc-style
#: corruption with pathloss eligibility), a different exponent, and a
#: hard range cutoff
PATHLOSS_SPECS = [
    ChannelSpec(model="pathloss"),
    ChannelSpec(model="pathloss", n_bands=2),
    ChannelSpec(model="pathloss", capture=False),
    ChannelSpec(model="pathloss", pathloss_exponent=2.7),
    ChannelSpec(model="pathloss", max_range_m=35.0),
]


@pytest.mark.parametrize("seed", range(6))
def test_kernels_bit_identical_pathloss(seed):
    """The SINR-capture cohort handlers must match the scalar capture
    path bit-for-bit: interference sums, smax tracking, and the decode
    test are all float64 elementwise ops on both sides."""
    regime = list(REGIMES)[seed % len(REGIMES)]
    audit, timeline = OBS_COMBOS[seed % len(OBS_COMBOS)]
    spec = PATHLOSS_SPECS[seed % len(PATHLOSS_SPECS)]
    cfg = dataclasses.replace(_config(seed, regime), channel=spec)

    scalar = _run(cfg, "scalar", audit, timeline)
    vector = _run(cfg, "vector", audit, timeline)

    assert dataclasses.asdict(scalar.metrics) == dataclasses.asdict(vector.metrics)
    assert scalar.events_processed == vector.events_processed
    assert scalar.cancelled_skipped == vector.cancelled_skipped
    if timeline:
        assert scalar.timeline.as_dict() == vector.timeline.as_dict()
    if audit:
        assert scalar.audit == vector.audit
