"""Disc-equivalence of the degenerate pathloss channel.

``ChannelSpec.degenerate_disc(r)`` pins the channel refactor's safety
argument: a pathloss config whose sensitivity is unreachable (so link
eligibility collapses to the squared-distance ``max_range_m`` cutoff —
the disc neighbor test verbatim) with capture disabled (so corruption
uses the disc all-or-nothing logic) must reproduce the disc channel's
RunMetrics *bit-identically*, on both kernels.  Anything less means the
abstraction changed the physics it claims to merely parameterize.
"""

import dataclasses

import pytest

from repro.diffusion.agent import DiffusionParams
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_observed
from repro.experiments.store import run_key
from repro.net.channel import ChannelSpec
from repro.obs import ObsOptions


def _config(seed: int, scheme: str, **overrides) -> ExperimentConfig:
    return ExperimentConfig(
        scheme=scheme,
        n_nodes=120,
        seed=seed,
        duration=12.0,
        warmup=5.0,
        diffusion=DiffusionParams(exploratory_interval=6.0),
        **overrides,
    )


@pytest.mark.parametrize("seed", [3, 11, 29])
@pytest.mark.parametrize("kernel", ["scalar", "vector"])
def test_degenerate_pathloss_reproduces_disc(seed, kernel):
    scheme = ("greedy", "opportunistic")[seed % 2]
    disc = _config(seed, scheme)
    degen = _config(seed, scheme, channel=ChannelSpec.degenerate_disc(disc.range_m))

    a = run_observed(disc, kernel=kernel)
    b = run_observed(degen, kernel=kernel)

    assert dataclasses.asdict(a.metrics) == dataclasses.asdict(b.metrics)
    assert a.events_processed == b.events_processed
    # Distinct physics identity, same physics result: the channel block
    # still differs, so the two runs must never share a store entry.
    assert run_key(disc) != run_key(degen)


def test_degenerate_pathloss_matches_disc_timeline_and_audit():
    """Probe timelines and the invariant auditor flow through the
    channel abstraction unchanged."""
    disc = _config(5, "greedy")
    degen = _config(5, "greedy", channel=ChannelSpec.degenerate_disc(disc.range_m))
    obs = ObsOptions(audit=True, timeline=True)
    a = run_observed(disc, obs)
    b = run_observed(degen, obs)
    assert a.timeline.as_dict() == b.timeline.as_dict()
    assert a.audit == b.audit
    assert a.audit["ok"]
