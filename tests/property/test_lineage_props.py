"""Lineage conservation over random seeds (whole-run properties).

The causal record stream must balance: everything a sink counts descends
from a real generation, and the sink-side delivered set equals the
generated set minus items that verifiably went missing (still buffered in
flight, dropped by collision/dead-end, or lost to node failures).  The
weaker direction (delivered is a subset of generated) must hold exactly;
the conservation direction is checked against the collector's own
accounting, which shares no code with the lineage index.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.runner import build_world
from repro.obs.lineage import LINEAGE_CATEGORIES, LineageIndex


@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["greedy", "opportunistic"]),
)
@settings(max_examples=6, deadline=None)
def test_lineage_conservation(seed, scheme):
    cfg = ExperimentConfig.from_profile(smoke(), scheme, 60, seed=seed, n_sources=3)
    world = build_world(cfg)
    world.tracer.enable(*LINEAGE_CATEGORIES)
    world.sim.run(until=cfg.duration)

    index = LineageIndex.from_records(world.tracer.records())
    metrics = world.metrics

    # Source side: the lineage stream saw every generation the agents
    # performed — per-source max seq equals the per-source record count.
    for src in world.sources:
        agent = world.agents[src]
        expected = sum(state.data_seq for state in agent.source_for.values())
        seen = sum(1 for (s, _seq) in index.source_events() if s == src)
        assert seen == expected

    # Sink side: the delivered lineage keys are exactly the distinct
    # post-warmup keys the metrics collector counted, plus any warmup
    # deliveries the collector excludes — and every one is generated.
    counted = set()
    for bucket in metrics.delivered.values():
        counted |= bucket
    delivered = index.delivered_keys()
    assert counted <= delivered
    assert delivered <= index.source_events()
    for key in delivered - counted:
        # delivered by lineage but not counted: must be a warmup item
        gen_time = index.generated[key][0]
        assert gen_time < cfg.warmup

    # Conservation: generated = delivered + missing, where every missing
    # item is accounted for (never left its source, or left but vanished
    # in flight — both are legitimate losses, but they must not overlap
    # with deliveries).
    missing = index.source_events() - delivered
    assert len(index.source_events()) == len(delivered) + len(missing)

    # Per-interest trees are consistent with the per-interest key sets.
    for interest in index.interests():
        tree = index.delivery_tree(interest)
        assert tree.delivered_keys == len(index.delivered_keys(interest))
        assert tree.sources <= set(world.sources)
        assert tree.sinks <= set(world.sinks)
