"""Unit tests for the simulator profiler."""

from repro.obs import Profiler, format_profile
from repro.sim import Simulator


def slow_callback():
    # Burn a tiny, observable amount of wall time.
    sum(range(200))


class TestProfiler:
    def test_report_counts_events_and_throughput(self):
        sim = Simulator()
        for i in range(100):
            sim.schedule(i * 0.1, slow_callback)
        prof = Profiler(sample_interval=10).attach(sim)
        sim.run()
        prof.detach()
        report = prof.report()
        assert report.events == 100
        assert report.events_per_sec > 0
        assert report.wall_time_s > 0
        assert report.sim_time_s == 9.9

    def test_callback_table_keys_by_qualname(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, slow_callback)
        sim.schedule(2.0, out.append, "x")
        prof = Profiler().attach(sim)
        sim.run()
        report = prof.report()
        callsites = {c.callsite for c in report.callbacks}
        assert "slow_callback" in callsites
        # bound methods collapse onto their underlying function
        assert any("append" in c for c in callsites)
        by_site = {c.callsite: c for c in report.callbacks}
        assert by_site["slow_callback"].calls == 1
        assert by_site["slow_callback"].total_s >= 0
        assert by_site["slow_callback"].max_s >= by_site["slow_callback"].total_s / 2

    def test_bound_method_calls_aggregate(self):
        sim = Simulator()
        out = []
        for i in range(10):
            sim.schedule(float(i), out.append, i)
        prof = Profiler().attach(sim)
        sim.run()
        by_site = {c.callsite: c for c in prof.report().callbacks}
        (name,) = by_site
        assert by_site[name].calls == 10

    def test_heap_depth_sampling(self):
        sim = Simulator()
        for i in range(64):
            sim.schedule(float(i), lambda: None)
        prof = Profiler(sample_interval=8).attach(sim)
        sim.run()
        report = prof.report()
        assert report.heap_samples == 8
        assert report.heap_min >= 0
        assert report.heap_max <= 64
        assert report.heap_min <= report.heap_mean <= report.heap_max

    def test_cancelled_churn_counted(self):
        sim = Simulator()
        keep = [sim.schedule(float(i), lambda: None) for i in range(10)]
        for ev in keep[:4]:
            ev.cancel()
        prof = Profiler().attach(sim)
        sim.run()
        report = prof.report()
        assert report.events == 6
        assert report.cancelled_churn == 4

    def test_format_profile_mentions_headline_numbers(self):
        sim = Simulator()
        sim.schedule(1.0, slow_callback)
        prof = Profiler().attach(sim)
        sim.run()
        text = format_profile(prof.report())
        assert "events/sec" in text
        assert "heap depth" in text
        assert "slow_callback" in text

    def test_simulator_without_profiler_has_no_note_overhead_state(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1  # plain path still works
