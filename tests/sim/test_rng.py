"""Unit tests for deterministic RNG streams."""

from repro.sim import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "mac.3") == derive_seed(42, "mac.3")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(42, "mac.3") != derive_seed(42, "mac.4")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(42, "mac.3") != derive_seed(43, "mac.3")

    def test_seed_is_64bit(self):
        s = derive_seed(1, "x")
        assert 0 <= s < 2**64


class TestRngRegistry:
    def test_streams_memoised(self):
        reg = RngRegistry(7)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_independent_sequences(self):
        reg = RngRegistry(7)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_registries(self):
        seq1 = [RngRegistry(9).stream("x").random() for _ in range(1)]
        seq2 = [RngRegistry(9).stream("x").random() for _ in range(1)]
        assert seq1 == seq2

    def test_order_of_stream_creation_does_not_matter(self):
        r1 = RngRegistry(5)
        r1.stream("first")
        v1 = r1.stream("second").random()
        r2 = RngRegistry(5)
        v2 = r2.stream("second").random()
        assert v1 == v2

    def test_spawn_child_independent(self):
        parent = RngRegistry(3)
        child = parent.spawn("worker")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_spawn_deterministic(self):
        a = RngRegistry(3).spawn("w").stream("x").random()
        b = RngRegistry(3).spawn("w").stream("x").random()
        assert a == b

    def test_names_listing(self):
        reg = RngRegistry(1)
        reg.stream("b")
        reg.stream("a")
        assert list(reg.names()) == ["a", "b"]
