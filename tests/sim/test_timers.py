"""Unit tests for the timer helpers."""

import random

import pytest

from repro.sim import OneShotTimer, PeriodicTimer, Simulator


class TestOneShotTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(1))
        timer.start(2.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_restart_replaces_pending_expiry(self):
        sim = Simulator()
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, lambda: timer.restart(3.0))
        sim.run()
        assert fired == [4.0]

    def test_double_start_rejected(self):
        sim = Simulator()
        timer = OneShotTimer(sim, lambda: None)
        timer.start(1.0)
        with pytest.raises(RuntimeError):
            timer.start(1.0)

    def test_armed_and_expiry_time(self):
        sim = Simulator()
        timer = OneShotTimer(sim, lambda: None)
        assert not timer.armed
        assert timer.expiry_time is None
        timer.start(2.5)
        assert timer.armed
        assert timer.expiry_time == 2.5
        sim.run()
        assert not timer.armed

    def test_can_rearm_after_fire(self):
        sim = Simulator()
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0]

    def test_cancel_when_disarmed_is_noop(self):
        timer = OneShotTimer(Simulator(), lambda: None)
        timer.cancel()  # must not raise


class TestPeriodicTimer:
    def test_ticks_at_period(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=2.0)
        timer.start()
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_initial_delay_override(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=2.0)
        timer.start(initial_delay=0.0)
        sim.run(until=5.0)
        assert ticks == [0.0, 2.0, 4.0]

    def test_stop_halts_ticking(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=1.0)
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_callback_may_stop_timer(self):
        sim = Simulator()
        ticks = []

        def cb():
            ticks.append(sim.now)
            if len(ticks) == 3:
                timer.stop()

        timer = PeriodicTimer(sim, cb, period=1.0)
        timer.start()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_jitter_bounds(self):
        sim = Simulator()
        ticks = []
        rng = random.Random(42)
        timer = PeriodicTimer(
            sim, lambda: ticks.append(sim.now), period=10.0, jitter=1.0, rng=rng
        )
        timer.start(initial_delay=0.0)
        sim.run(until=100.0)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(9.0 <= g <= 11.0 for g in gaps)
        assert len(set(round(g, 6) for g in gaps)) > 1  # actually jittered

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), lambda: None, period=1.0, jitter=0.1)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), lambda: None, period=0.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), lambda: None, period=1.0, jitter=-1.0)

    def test_double_start_rejected(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, lambda: None, period=1.0)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_fire_count(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, lambda: None, period=1.0)
        timer.start()
        sim.run(until=5.5)
        assert timer.fire_count == 5

    def test_running_property(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, lambda: None, period=1.0)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running
