"""Unit tests for the typed metrics registry."""

import json

import pytest

from repro.obs import CardinalityError, MetricsRegistry


class TestCounters:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("mac.tx") is reg.counter("mac.tx")

    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("mac.tx")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.value("mac.tx") == 5

    def test_counter_is_monotone(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("mac.tx").inc(-1)

    def test_missing_value_is_zero(self):
        assert MetricsRegistry().value("never") == 0

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("mac.tx", node="1").inc(3)
        reg.counter("mac.tx", node="2").inc()
        reg.counter("mac.tx").inc(10)
        assert reg.value("mac.tx", node="1") == 3
        assert reg.value("mac.tx", node="2") == 1
        assert reg.value("mac.tx") == 10

    def test_counters_flat_formats_labels(self):
        reg = MetricsRegistry()
        reg.counter("mac.tx").inc(2)
        reg.counter("mac.tx", node="7").inc()
        flat = reg.counters_flat()
        assert flat["mac.tx"] == 2
        assert flat["mac.tx{node=7}"] == 1

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", a="1", b="2")
        b = reg.counter("x", b="2", a="1")
        assert a is b


class TestKindsAndCardinality:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")
        with pytest.raises(ValueError):
            reg.histogram("m")

    def test_cardinality_bound(self):
        reg = MetricsRegistry(max_series_per_name=3)
        for i in range(3):
            reg.counter("c", node=str(i))
        with pytest.raises(CardinalityError):
            reg.counter("c", node="overflow")
        # existing series still reachable
        assert reg.counter("c", node="1") is not None

    def test_detailed_flag_defaults_off(self):
        assert MetricsRegistry().detailed is False
        assert MetricsRegistry(detailed=True).detailed is True


class TestGauges:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("heap.depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12


class TestHistograms:
    def test_bucket_edges_le_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1, 2, 5))
        for v in (0.5, 1, 1.5, 2, 4, 5, 99):
            h.observe(v)
        # le-1: {0.5, 1}; le-2: {1.5, 2}; le-5: {4, 5}; overflow: {99}
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(0.5 + 1 + 1.5 + 2 + 4 + 5 + 99)
        assert h.mean() == pytest.approx(h.sum / 7)

    def test_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1, 2, 3))

    def test_omitted_buckets_reuse_registered_edges(self):
        reg = MetricsRegistry()
        a = reg.histogram("h", buckets=(1, 2))
        b = reg.histogram("h")
        assert a is b

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(5, 1))

    def test_value_on_histogram_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1,)).observe(0.5)
        with pytest.raises(TypeError):
            reg.value("h")


class TestSnapshot:
    def test_snapshot_is_json_serializable_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.counter("c", node="3").inc()
        reg.gauge("g").set(1.5)
        h = reg.histogram("h", buckets=(1, 10))
        h.observe(0.5)
        h.observe(100)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"] == {"c": 2, "c{node=3}": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [1, 0, 1]
        assert snap["histograms"]["h"]["count"] == 2


class TestQuantiles:
    """Percentile estimation on known distributions (the /metrics p50/p95/p99)."""

    def test_uniform_within_one_bucket_interpolates(self):
        from repro.obs import quantile_from_counts

        # 100 observations uniform in (0, 1]: the estimator assumes
        # uniformity within a bucket, so quantiles are exact here
        assert quantile_from_counts((1.0,), [100, 0], 0.5) == pytest.approx(0.5)
        assert quantile_from_counts((1.0,), [100, 0], 0.95) == pytest.approx(0.95)
        assert quantile_from_counts((1.0,), [100, 0], 0.99) == pytest.approx(0.99)

    def test_known_two_bucket_distribution(self):
        from repro.obs import quantile_from_counts

        # 90 observations in (0, 10], 10 in (10, 100]
        buckets, counts = (10.0, 100.0), [90, 10, 0]
        assert quantile_from_counts(buckets, counts, 0.5) == pytest.approx(10 * 50 / 90)
        # p95: rank 95 falls 5 observations into the second bucket
        assert quantile_from_counts(buckets, counts, 0.95) == pytest.approx(
            10 + 90 * (95 - 90) / 10
        )
        assert quantile_from_counts(buckets, counts, 1.0) == pytest.approx(100.0)

    def test_overflow_bucket_clamps_to_last_edge(self):
        from repro.obs import quantile_from_counts

        # everything above the last edge: the histogram can only say ">= 2"
        assert quantile_from_counts((1.0, 2.0), [0, 0, 50], 0.99) == 2.0

    def test_empty_histogram_returns_none(self):
        from repro.obs import quantile_from_counts

        assert quantile_from_counts((1.0,), [0, 0], 0.5) is None

    def test_bad_q_rejected(self):
        from repro.obs import quantile_from_counts

        with pytest.raises(ValueError):
            quantile_from_counts((1.0,), [1, 0], 1.5)

    def test_histogram_quantile_method(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.0) == pytest.approx(0.0)
        assert h.quantile(1.0) == pytest.approx(4.0)
        assert 1.0 <= h.quantile(0.5) <= 2.0

    def test_summarize_histogram_from_snapshot(self):
        from repro.obs import summarize_histogram

        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0,))
        for _ in range(100):
            h.observe(0.5)
        summary = summarize_histogram(json.loads(json.dumps(h.as_sample())))
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(0.5)
        assert summary["p50"] == pytest.approx(0.5)
        assert summary["p95"] == pytest.approx(0.95)
        assert summary["p99"] == pytest.approx(0.99)
