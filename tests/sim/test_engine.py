"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import ScheduledEvent, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(3.0, out.append, "c")
        sim.schedule(1.0, out.append, "a")
        sim.schedule(2.0, out.append, "b")
        sim.run()
        assert out == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(4.25, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 4.25]
        assert sim.now == 4.25

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        out = []
        for tag in range(10):
            sim.schedule(1.0, out.append, tag)
        sim.run()
        assert out == list(range(10))

    def test_zero_delay_event_fires(self):
        sim = Simulator()
        out = []
        sim.schedule(0.0, out.append, 1)
        sim.run()
        assert out == [1]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_event_schedules_further_events(self):
        sim = Simulator()
        out = []

        def first():
            out.append("first")
            sim.schedule(1.0, lambda: out.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert out == ["first", "second"]
        assert sim.now == 2.0

    def test_zero_delay_chain_does_not_advance_clock(self):
        sim = Simulator()
        depth = []

        def recurse(k):
            if k < 5:
                depth.append(sim.now)
                sim.schedule(0.0, recurse, k + 1)

        sim.schedule(1.0, recurse, 0)
        sim.run()
        assert depth == [1.0] * 5

    def test_args_passed_through(self):
        sim = Simulator()
        got = []
        sim.schedule(1.0, lambda a, b, c: got.append((a, b, c)), 1, "x", None)
        sim.run()
        assert got == [(1, "x", None)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        out = []
        ev = sim.schedule(1.0, out.append, "no")
        ev.cancel()
        sim.run()
        assert out == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()
        assert not ev.fired

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.run()
        ev.cancel()
        assert ev.fired

    def test_pending_transitions(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        assert ev.pending
        sim.run()
        assert not ev.pending

    def test_cancel_from_within_event(self):
        sim = Simulator()
        out = []
        later = sim.schedule(2.0, out.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert out == []


class TestRunControl:
    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "in")
        sim.schedule(5.0, out.append, "beyond")
        sim.run(until=3.0)
        assert out == ["in"]
        assert sim.now == 3.0

    def test_run_until_is_resumable(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(5.0, out.append, "b")
        sim.run(until=3.0)
        sim.run(until=10.0)
        assert out == ["a", "b"]

    def test_event_exactly_at_horizon_fires(self):
        sim = Simulator()
        out = []
        sim.schedule(3.0, out.append, "edge")
        sim.run(until=3.0)
        assert out == ["edge"]

    def test_stop_halts_run(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda: (out.append("one"), sim.stop()))
        sim.schedule(2.0, out.append, "two")
        sim.run()
        assert out == ["one"]

    def test_step_fires_one_event(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(2.0, out.append, "b")
        assert sim.step()
        assert out == ["a"]
        assert sim.step()
        assert out == ["a", "b"]
        assert not sim.step()

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, nested)
        sim.run()

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestIntrospection:
    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        ev = sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.pending_count() == 1

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        ev = sim.schedule(2.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        assert sim.peek_time() == 2.0
        ev.cancel()
        assert sim.peek_time() == 5.0

    def test_peek_time_purges_cancelled_front_entries(self):
        sim = Simulator()
        cancelled = [sim.schedule(float(i), lambda: None) for i in range(5)]
        sim.schedule(10.0, lambda: None)
        for ev in cancelled:
            ev.cancel()
        assert sim.peek_time() == 10.0
        # the lazy scan removed the garbage and recorded the churn
        assert len(sim._heap) == 1
        assert sim.cancelled_skipped == 5
        # repeated peeks don't re-count
        assert sim.peek_time() == 10.0
        assert sim.cancelled_skipped == 5

    def test_pending_count_is_live_counter(self):
        # pending_count is O(1) (len(heap) - cancelled-in-heap): check the
        # bookkeeping through every path a cancelled entry can leave by.
        sim = Simulator()
        evs = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending_count() == 4
        evs[0].cancel()
        evs[0].cancel()  # idempotent: must not double-count
        assert sim.pending_count() == 3
        sim.step()  # pops the cancelled head, then fires evs[1]
        assert sim.pending_count() == 2
        evs[2].cancel()
        sim.run()  # drains the rest, skipping the cancelled entry
        assert sim.pending_count() == 0
        assert sim.cancelled_skipped == 2

    def test_cancel_after_fire_keeps_count_exact(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        ev.cancel()  # no-op on a fired event: count must not go stale
        assert sim.pending_count() == 1
        sim.run()
        assert sim.pending_count() == 0

    def test_peek_time_all_cancelled_returns_none(self):
        sim = Simulator()
        evs = [sim.schedule(1.0, lambda: None), sim.schedule(2.0, lambda: None)]
        for ev in evs:
            ev.cancel()
        assert sim.peek_time() is None
        assert sim.cancelled_skipped == 2

    def test_run_counts_cancelled_churn(self):
        sim = Simulator()
        live = [sim.schedule(float(i), lambda: None) for i in range(6)]
        for ev in live[::2]:
            ev.cancel()
        sim.run()
        assert sim.events_processed == 3
        assert sim.cancelled_skipped == 3

    def test_determinism_same_schedule_same_order(self):
        def run_once():
            sim = Simulator()
            out = []
            for i in range(50):
                sim.schedule((i * 7) % 5 * 0.1, out.append, i)
            sim.run()
            return out

        assert run_once() == run_once()


class TestCohorts:
    def test_cohort_fires_once_counts_many(self):
        sim = Simulator()
        calls = []
        sim.schedule_cohort(1.0, 5, calls.append, "batch")
        sim.run()
        assert calls == ["batch"]  # one dispatch...
        assert sim.events_processed == 5  # ...five logical events

    def test_cohort_at_absolute_time(self):
        sim = Simulator()
        out = []
        sim.schedule_cohort_at(2.0, 3, out.append, "x")
        sim.schedule(1.0, out.append, "a")
        sim.run()
        assert out == ["a", "x"]
        assert sim.now == 2.0
        assert sim.events_processed == 4

    def test_cohort_count_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_cohort(1.0, 0, lambda: None)

    def test_cohort_fifo_tie_order_matches_plain_events(self):
        # A cohort occupies exactly one (time, seq) slot: events scheduled
        # around it at the same instant keep their FIFO order.
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "before")
        sim.schedule_cohort(1.0, 9, out.append, "cohort")
        sim.schedule(1.0, out.append, "after")
        sim.run()
        assert out == ["before", "cohort", "after"]

    def test_cancelled_cohort_counts_nothing(self):
        sim = Simulator()
        ev = sim.schedule_cohort(1.0, 7, lambda: None)
        ev.cancel()
        sim.run()
        assert sim.events_processed == 0
        assert sim.cancelled_skipped == 1

    def test_step_counts_cohort_members(self):
        sim = Simulator()
        sim.schedule_cohort(1.0, 4, lambda: None)
        assert sim.step() is True
        assert sim.events_processed == 4


class TestHeapCompaction:
    def test_compaction_sweeps_when_mostly_dead(self):
        sim = Simulator()
        evs = [sim.schedule(float(i + 1), lambda: None) for i in range(210)]
        for ev in evs[:150]:
            ev.cancel()
        # The sweep fired as soon as dead entries outnumbered live ones
        # (at the 106th cancellation: 105 live remain > we keep cancelling);
        # the remaining cancellations re-accumulate below the floor.
        assert sim.compaction_swept == 106
        assert len(sim._heap) == 104
        assert sim._cancelled_pending == 44
        assert sim.pending_count() == 60
        sim.run()
        assert sim.events_processed == 60
        # every cancelled entry was counted exactly once, sweep or lazy pop
        assert sim.cancelled_skipped == 150

    def test_no_compaction_below_floor(self):
        sim = Simulator()
        evs = [sim.schedule(float(i + 1), lambda: None) for i in range(20)]
        for ev in evs[:15]:
            ev.cancel()
        # 15 dead of 20 is proportionally plenty but under the 64 floor
        assert sim.compaction_swept == 0
        assert len(sim._heap) == 20
        sim.run()
        assert sim.events_processed == 5
        assert sim.cancelled_skipped == 15

    def test_compaction_preserves_order_and_pending_count(self):
        sim = Simulator()
        out = []
        survivors = []
        doomed = []
        for i in range(300):
            ev = sim.schedule(float(i), out.append, i)
            (survivors if i % 3 == 0 else doomed).append((i, ev))
        for _i, ev in doomed:
            ev.cancel()
        assert sim.compaction_swept > 0
        assert sim.pending_count() == len(survivors)
        sim.run()
        # survivors fire in their original time order, none lost
        assert out == [i for i, _ev in survivors]
        assert sim.events_processed == len(survivors)

    def test_compaction_mid_run_keeps_local_heap_alias_valid(self):
        # Cancelling from inside a fired event triggers compaction while
        # run() holds a local reference to the heap list; the sweep must
        # mutate that same list in place.
        sim = Simulator()
        doomed = [sim.schedule(50.0 + i, lambda: None) for i in range(150)]
        out = []

        def cancel_all():
            for ev in doomed:
                ev.cancel()

        sim.schedule(1.0, cancel_all)
        sim.schedule(2.0, out.append, "after")
        sim.run()
        assert out == ["after"]
        assert sim.compaction_swept > 0
        assert sim.events_processed == 2
