"""Unit tests for counters and structured tracing."""

from repro.sim import Simulator, TraceRecord, Tracer


def make_tracer():
    sim = Simulator()
    tr = Tracer(lambda: sim.now)
    # ad-hoc categories used throughout these tests; enable() validates
    # against the central table plus tracer-local registrations
    tr.register_category("a", "b", "x", "cat", "mac.tx")
    return sim, tr


class TestCounters:
    def test_count_accumulates(self):
        _sim, tr = make_tracer()
        tr.count("mac.tx")
        tr.count("mac.tx")
        tr.count("mac.tx", 3)
        assert tr.value("mac.tx") == 5

    def test_unknown_counter_is_zero(self):
        _sim, tr = make_tracer()
        assert tr.value("never") == 0

    def test_counters_are_independent(self):
        _sim, tr = make_tracer()
        tr.count("a")
        tr.count("b", 2)
        assert tr.value("a") == 1
        assert tr.value("b") == 2


class TestRecords:
    def test_disabled_category_not_recorded(self):
        _sim, tr = make_tracer()
        tr.record("mac.tx", node=1)
        assert tr.records() == []

    def test_enabled_category_recorded_with_time(self):
        sim, tr = make_tracer()
        tr.enable("mac.tx")
        sim.schedule(2.0, lambda: tr.record("mac.tx", node=1))
        sim.run()
        recs = tr.records("mac.tx")
        assert len(recs) == 1
        assert recs[0].time == 2.0
        assert recs[0].get("node") == 1

    def test_wildcard_enables_everything(self):
        _sim, tr = make_tracer()
        tr.enable("*")
        tr.record("anything", x=1)
        tr.record("else", y=2)
        assert len(tr.records()) == 2

    def test_disable(self):
        _sim, tr = make_tracer()
        tr.enable("cat")
        tr.record("cat", n=1)
        tr.disable("cat")
        tr.record("cat", n=2)
        assert len(tr.records("cat")) == 1

    def test_filter_by_category(self):
        _sim, tr = make_tracer()
        tr.enable("a", "b")
        tr.record("a", n=1)
        tr.record("b", n=2)
        assert len(tr.records("a")) == 1
        assert len(tr.records()) == 2

    def test_listener_invoked(self):
        _sim, tr = make_tracer()
        tr.enable("x")
        seen = []
        tr.add_listener(seen.append)
        tr.record("x", k=1)
        assert len(seen) == 1
        assert isinstance(seen[0], TraceRecord)

    def test_listener_not_invoked_for_disabled(self):
        _sim, tr = make_tracer()
        seen = []
        tr.add_listener(seen.append)
        tr.record("x", k=1)
        assert seen == []

    def test_categories_listing(self):
        _sim, tr = make_tracer()
        tr.enable("*")
        tr.record("b")
        tr.record("a")
        tr.record("b")
        assert list(tr.categories()) == ["a", "b"]

    def test_clear_records(self):
        _sim, tr = make_tracer()
        tr.enable("x")
        tr.record("x")
        tr.clear_records()
        assert tr.records() == []

    def test_record_get_default(self):
        rec = TraceRecord(0.0, "c", (("a", 1),))
        assert rec.get("missing", "dflt") == "dflt"
        assert rec.as_dict() == {"a": 1}

    def test_remove_listener(self):
        _sim, tr = make_tracer()
        tr.enable("x")
        seen = []
        tr.add_listener(seen.append)
        tr.record("x", k=1)
        tr.remove_listener(seen.append)
        tr.record("x", k=2)
        assert len(seen) == 1


class TestRegistryBacking:
    """tracer.count() is a shim over the typed metrics registry."""

    def test_counts_land_in_registry(self):
        _sim, tr = make_tracer()
        tr.count("mac.tx", 3)
        assert tr.registry.value("mac.tx") == 3

    def test_registry_counters_visible_through_value(self):
        _sim, tr = make_tracer()
        tr.registry.counter("direct").inc(7)
        assert tr.value("direct") == 7

    def test_counters_snapshot_includes_labelled_series(self):
        _sim, tr = make_tracer()
        tr.count("mac.tx")
        tr.registry.counter("mac.tx", node="5").inc(2)
        assert tr.counters["mac.tx"] == 1
        assert tr.counters["mac.tx{node=5}"] == 2

    def test_shared_registry_can_be_injected(self):
        from repro.obs import MetricsRegistry

        sim = Simulator()
        reg = MetricsRegistry(detailed=True)
        tr = Tracer(lambda: sim.now, registry=reg)
        tr.count("a")
        assert reg.value("a") == 1
        assert tr.registry.detailed


class TestRecordBounds:
    def test_default_bound_is_finite(self):
        from repro.sim import DEFAULT_MAX_RECORDS

        _sim, tr = make_tracer()
        assert tr.max_records == DEFAULT_MAX_RECORDS

    def test_bounded_store_drops_and_counts(self):
        sim = Simulator()
        tr = Tracer(lambda: sim.now, max_records=2)
        tr.register_category("x")
        tr.enable("x")
        for i in range(5):
            tr.record("x", i=i)
        assert len(tr.records()) == 2
        assert tr.records_dropped == 3
        assert tr.value("trace.records_dropped") == 3

    def test_streaming_mode_stores_nothing_but_feeds_listeners(self):
        sim = Simulator()
        tr = Tracer(lambda: sim.now, max_records=0)
        tr.register_category("x")
        tr.enable("x")
        seen = []
        tr.add_listener(seen.append)
        for i in range(4):
            tr.record("x", i=i)
        assert tr.records() == []
        assert len(seen) == 4
        # pure streaming is expected behaviour, not an overflow signal
        assert tr.value("trace.records_dropped") == 0

    def test_unbounded_when_explicitly_none(self):
        sim = Simulator()
        tr = Tracer(lambda: sim.now, max_records=None)
        tr.register_category("x")
        tr.enable("x")
        for i in range(10):
            tr.record("x", i=i)
        assert len(tr.records()) == 10
        assert tr.records_dropped == 0

    def test_wants_mirrors_enablement(self):
        # Hot paths (phy.tx/phy.rx) skip building record payloads when
        # nobody is listening; wants() must track enable/disable exactly.
        _sim, tracer = make_tracer()
        assert not tracer.wants("phy.tx")
        tracer.enable("phy.tx")
        assert tracer.wants("phy.tx")
        assert not tracer.wants("phy.rx")
        tracer.disable("phy.tx")
        assert not tracer.wants("phy.tx")
        tracer.enable("*")
        assert tracer.wants("phy.rx")
        assert tracer.wants("anything.at.all")


class TestCategoryValidation:
    """enable() rejects names absent from the central table (typo guard)."""

    def test_typo_raises(self):
        import pytest

        sim = Simulator()
        tr = Tracer(lambda: sim.now)
        with pytest.raises(ValueError, match="phy.txx"):
            tr.enable("phy.txx")

    def test_typo_does_not_partially_enable(self):
        import pytest

        sim = Simulator()
        tr = Tracer(lambda: sim.now)
        with pytest.raises(ValueError):
            tr.enable("phy.tx", "nonsense")
        assert not tr.wants("phy.tx")

    def test_central_categories_accepted(self):
        from repro.obs import TRACE_CATEGORIES

        sim = Simulator()
        tr = Tracer(lambda: sim.now)
        tr.enable(*TRACE_CATEGORIES)
        for cat in TRACE_CATEGORIES:
            assert tr.wants(cat)

    def test_register_category_is_tracer_local(self):
        import pytest

        sim = Simulator()
        tr1 = Tracer(lambda: sim.now)
        tr2 = Tracer(lambda: sim.now)
        tr1.register_category("custom.thing")
        tr1.enable("custom.thing")
        with pytest.raises(ValueError):
            tr2.enable("custom.thing")

    def test_known_categories_union(self):
        from repro.obs import TRACE_CATEGORIES

        sim = Simulator()
        tr = Tracer(lambda: sim.now)
        tr.register_category("local.cat")
        known = tr.known_categories()
        assert "local.cat" in known
        assert set(TRACE_CATEGORIES) <= known

    def test_wildcard_always_allowed(self):
        sim = Simulator()
        tr = Tracer(lambda: sim.now)
        tr.enable("*")
        assert tr.wants("anything.at.all")
