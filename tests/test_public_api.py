"""Public API surface tests: everything advertised in __all__ exists and
the README quickstart actually works."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sim",
            "repro.net",
            "repro.diffusion",
            "repro.aggregation",
            "repro.core",
            "repro.trees",
            "repro.experiments",
            "repro.cli",
            "repro.constants",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_readme_quickstart_runs(self):
        from repro import ExperimentConfig, run_experiment, smoke

        cfg = ExperimentConfig.from_profile(smoke(), "greedy", 50, seed=1, n_sources=2)
        r = run_experiment(cfg)
        assert r.delivery_ratio > 0

    def test_schemes_cover_agents(self):
        from repro.experiments.config import SCHEMES
        from repro.experiments.runner import _AGENTS

        assert set(SCHEMES) == set(_AGENTS)

    def test_agent_scheme_names_match_registry(self):
        from repro.experiments.runner import _AGENTS

        for name, cls in _AGENTS.items():
            assert cls.scheme_name == name
