"""Tests for the online invariant auditor and static artifact audits."""

import dataclasses

import pytest

from repro.obs.audit import (
    Auditor,
    EnergyAttributionChecker,
    GradientAcyclicityChecker,
    LineageTerminationChecker,
    MAX_FINDINGS_PER_CHECKER,
    RxHasTxChecker,
    audit_figure_cells,
    audit_static,
    format_findings,
)
from repro.sim.trace import TraceRecord


def rec(time, category, **fields):
    return TraceRecord(time, category, tuple(fields.items()))


def smoke_cfg(scheme="greedy", seed=4):
    from repro.experiments.config import ExperimentConfig, smoke

    return ExperimentConfig.from_profile(smoke(), scheme, 60, seed=seed)


class TestRxHasTx:
    def test_matched_pair_clean(self):
        c = RxHasTxChecker()
        c.observe(rec(0.0, "phy.tx", frame=7, src=1, dst=2, size=10, kind=0, cls="data"))
        c.observe(rec(0.1, "phy.rx", frame=7, node=2, src=1))
        c.finalize()
        assert c.findings == []

    def test_phantom_rx_flagged(self):
        c = RxHasTxChecker()
        c.observe(rec(0.1, "phy.rx", frame=99, node=2, src=1))
        c.finalize()
        assert len(c.findings) == 1
        assert c.findings[0].invariant == "rx-has-tx"
        assert "99" in c.findings[0].message

    def test_finding_cap(self):
        c = RxHasTxChecker()
        for i in range(MAX_FINDINGS_PER_CHECKER + 10):
            c.observe(rec(float(i), "phy.rx", frame=1000 + i, node=2, src=1))
        c.finalize()
        assert len(c.findings) == MAX_FINDINGS_PER_CHECKER + 1
        assert c.findings[-1].severity == "warning"
        assert "suppressed" in c.findings[-1].message


class TestLineageTermination:
    def test_generated_then_delivered_clean(self):
        c = LineageTerminationChecker()
        c.observe(rec(1.0, "data.gen", node=5, interest=1, src=5, seq=0))
        c.observe(rec(2.0, "data.deliver", interest=1, sink=0, key=[5, 0]))
        c.finalize()
        assert c.findings == []

    def test_fabricated_delivery_flagged(self):
        c = LineageTerminationChecker()
        c.observe(rec(2.0, "data.deliver", interest=1, sink=0, key=[5, 0]))
        c.finalize()
        assert len(c.findings) == 1
        assert c.findings[0].invariant == "lineage-termination"


class TestGradientAcyclicity:
    def test_chain_clean(self):
        c = GradientAcyclicityChecker()
        c.observe(rec(1.0, "gradient.reinforce", node=3, interest=1, neighbor=2))
        c.observe(rec(1.1, "gradient.reinforce", node=2, interest=1, neighbor=1))
        c.observe(rec(1.2, "gradient.reinforce", node=1, interest=1, neighbor=0))
        c.finalize()
        assert c.findings == []

    def test_two_way_edge_is_not_a_cycle(self):
        # Both endpoints prefer each other: the forwarding rule suppresses
        # this pair, so the auditor must not report it.
        c = GradientAcyclicityChecker()
        c.observe(rec(1.0, "gradient.reinforce", node=1, interest=1, neighbor=2))
        c.observe(rec(1.1, "gradient.reinforce", node=2, interest=1, neighbor=1))
        c.finalize()
        assert c.findings == []

    def test_three_cycle_flagged(self):
        c = GradientAcyclicityChecker()
        c.observe(rec(1.0, "gradient.reinforce", node=1, interest=1, neighbor=2))
        c.observe(rec(1.1, "gradient.reinforce", node=2, interest=1, neighbor=3))
        c.observe(rec(1.2, "gradient.reinforce", node=3, interest=1, neighbor=1))
        assert len(c.findings) == 1
        assert c.findings[0].invariant == "gradient-acyclic"
        assert "1 -> 2 -> 3 -> 1" in c.findings[0].message or "cycle" in c.findings[0].message

    def test_degrade_breaks_cycle(self):
        c = GradientAcyclicityChecker()
        c.observe(rec(1.0, "gradient.reinforce", node=1, interest=1, neighbor=2))
        c.observe(rec(1.1, "gradient.reinforce", node=2, interest=1, neighbor=3))
        c.observe(rec(1.2, "gradient.degrade", node=2, interest=1, neighbor=3))
        c.observe(rec(1.3, "gradient.reinforce", node=3, interest=1, neighbor=1))
        c.finalize()
        assert c.findings == []

    def test_stale_edge_skipped_with_timeout(self):
        c = GradientAcyclicityChecker(data_timeout=10.0)
        c.observe(rec(1.0, "gradient.reinforce", node=1, interest=1, neighbor=2))
        c.observe(rec(2.0, "gradient.reinforce", node=2, interest=1, neighbor=3))
        # node 3 closes the loop, but node 1's edge is 50 s stale by then
        c.observe(rec(51.0, "gradient.reinforce", node=3, interest=1, neighbor=1))
        c.finalize()
        assert c.findings == []


class TestEnergyAttribution:
    class FakeNode:
        def __init__(self, node_id, meter):
            self.node_id = node_id
            self.energy = meter

    def make_meter(self):
        from repro.net.energy import EnergyMeter, EnergyParams

        m = EnergyMeter(EnergyParams())
        m.note_tx(1.0, "data")
        m.note_rx(0.0, 2.0, "interest")
        return m

    def test_consistent_meter_clean(self):
        c = EnergyAttributionChecker()
        c.finalize([self.FakeNode(0, self.make_meter())])
        assert c.findings == []

    def test_tampered_meter_flagged(self):
        m = self.make_meter()
        m.tx_time_by_class["data"] += 0.5  # corrupt the attribution
        c = EnergyAttributionChecker()
        c.finalize([self.FakeNode(3, m)])
        assert len(c.findings) == 1
        assert c.findings[0].invariant == "energy-attribution"
        assert c.findings[0].context["node"] == 3

    def test_no_nodes_skips(self):
        c = EnergyAttributionChecker()
        c.finalize(None)
        assert c.findings == []


class TestAuditorOnLiveRuns:
    @pytest.mark.parametrize("scheme", ["greedy", "opportunistic"])
    def test_clean_run_has_zero_findings(self, scheme):
        from repro.experiments.runner import run_observed
        from repro.obs import ObsOptions

        observed = run_observed(smoke_cfg(scheme), ObsOptions(audit=True))
        assert observed.audit is not None
        assert observed.audit["ok"], observed.audit["findings"]
        assert observed.audit["n_findings"] == 0
        assert observed.audit["records_seen"] > 0

    def test_audit_does_not_change_metrics(self):
        from repro.experiments.runner import run_observed
        from repro.obs import ObsOptions

        plain = run_observed(smoke_cfg()).metrics
        audited = run_observed(smoke_cfg(), ObsOptions(audit=True)).metrics
        assert dataclasses.asdict(plain) == dataclasses.asdict(audited)

    def test_injected_fault_is_caught(self):
        # Tamper with one node's attribution after a clean audited run:
        # the finalize-time checker must catch it.  Uses the scalar
        # kernel, whose meters expose their live per-class dict (the
        # vector kernel's MeterView materializes a copy per read, so
        # this mutation would silently miss the backing columns).
        from repro.experiments.runner import build_world
        from repro.obs import ObsOptions

        cfg = smoke_cfg()
        world = build_world(cfg, ObsOptions(audit=True), kernel="scalar")
        auditor = Auditor()
        auditor.attach(world.tracer)
        world.sim.run(until=cfg.duration)
        world.nodes[7].energy.rx_time_by_class["interest"] = 1e6
        findings = auditor.finalize(world.nodes)
        assert any(f.invariant == "energy-attribution" for f in findings)

    def test_manifest_embeds_audit_section(self, tmp_path):
        from repro.experiments.runner import run_observed
        from repro.obs import ObsOptions, load_manifest

        path = tmp_path / "m.json"
        run_observed(smoke_cfg(), ObsOptions(audit=True, manifest_path=path))
        manifest = load_manifest(path)
        assert manifest["audit"]["ok"] is True
        assert manifest["audit"]["checkers"] == [
            "rx-has-tx",
            "lineage-termination",
            "gradient-acyclic",
            "energy-attribution",
        ]


class TestStaticAudit:
    def clean_metrics(self):
        return {
            "scheme": "greedy",
            "total_energy_j": 3.0,
            "energy_by_class": {"data": 2.0, "interest": 1.0},
            "distinct_delivered": 10,
            "delivery_ratio": 1.0,
            "counters": {
                "radio.tx": 5,
                "radio.rx": 7,
                "radio.tx_class{cls=data}": 3,
                "radio.tx_class{cls=interest}": 2,
                "radio.rx_class{cls=data}": 7,
                "diffusion.item_delivered": 12,
            },
        }

    def test_clean_metrics_pass(self):
        assert audit_static(self.clean_metrics()) == []

    def test_energy_mismatch_flagged(self):
        m = self.clean_metrics()
        m["total_energy_j"] = 4.0
        findings = audit_static(m)
        assert [f.invariant for f in findings] == ["energy-attribution"]

    def test_counter_mismatch_flagged(self):
        m = self.clean_metrics()
        m["counters"]["radio.tx_class{cls=data}"] = 99
        findings = audit_static(m)
        assert [f.invariant for f in findings] == ["radio-class-counters"]

    def test_overcounted_delivery_flagged(self):
        m = self.clean_metrics()
        m["distinct_delivered"] = 13
        findings = audit_static(m)
        assert [f.invariant for f in findings] == ["delivery-accounting"]

    def test_real_run_metrics_pass(self):
        from repro.experiments.runner import run_experiment

        metrics = run_experiment(smoke_cfg())
        assert audit_static(dataclasses.asdict(metrics)) == []

    def test_figure_cells(self):
        clean = [{"scheme": "greedy", "x": 50, "energy": 1.0, "delay": 0.1,
                  "energy_stdev": 0.0, "ratio": 0.9, "n_runs": 2}]
        assert audit_figure_cells(clean) == []
        bad = [dict(clean[0], ratio=1.5, energy=-1.0, n_runs=0)]
        invariants = {f.invariant for f in audit_figure_cells(bad)}
        assert invariants == {"delivery-accounting", "figure-sanity"}


class TestFormatFindings:
    def test_empty(self):
        assert "ok" in format_findings([])

    def test_rendered_fields(self):
        c = RxHasTxChecker()
        c.observe(rec(1.5, "phy.rx", frame=3, node=2, src=1))
        text = format_findings(c.findings)
        assert "rx-has-tx" in text
        assert "t=1.500" in text
