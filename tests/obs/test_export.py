"""JSONL trace export: streaming, round trips, and the PHY invariant.

The headline property: for enabled categories, export is lossless — a
trace read back from disk carries exactly the records the tracer emitted
— and on a real packet run "every reception has a matching transmission"
holds when asserted purely from the exported file.
"""

import json

import pytest

from repro.experiments import ExperimentConfig, run_observed
from repro.experiments.config import smoke
from repro.obs import ObsOptions, TraceWriter, iter_trace_lines, read_trace, trace_summary
from repro.sim import Simulator, Tracer


def make_tracer():
    sim = Simulator()
    tr = Tracer(lambda: sim.now)
    # ad-hoc categories used by these tests (enable() validates names)
    tr.register_category("a", "b", "x", "cat", "ignored")
    return sim, tr


class TestTraceWriter:
    def test_round_trip_is_lossless_for_json_scalars(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sim, tr = make_tracer()
        with TraceWriter(path) as writer:
            writer.attach(tr, "a", "b")
            sim.schedule(0.5, lambda: tr.record("a", x=1, label="hello", flag=True))
            sim.schedule(1.5, lambda: tr.record("b", y=2.25, z=None))
            sim.schedule(2.0, lambda: tr.record("ignored", n=9))  # not enabled
            sim.run()
        got = list(read_trace(path))
        assert got == tr.records()
        assert [r.category for r in got] == ["a", "b"]
        assert got[0].get("label") == "hello"
        assert got[1].get("z") is None

    def test_streaming_does_not_buffer_in_memory(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sim = Simulator()
        tr = Tracer(lambda: sim.now, max_records=0)
        with TraceWriter(path) as writer:
            writer.attach(tr)  # no categories -> "*"
            for i in range(100):
                tr.record("cat", i=i)
            assert writer.records_written == 100
        assert tr.records() == []
        assert len(list(read_trace(path))) == 100

    def test_category_filtered_read(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sim, tr = make_tracer()
        with TraceWriter(path) as writer:
            writer.attach(tr)
            tr.record("a", i=1)
            tr.record("b", i=2)
            tr.record("a", i=3)
        assert [r.get("i") for r in read_trace(path, category="a")] == [1, 3]

    def test_meta_header_and_gauge_snapshots(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sim, tr = make_tracer()
        tr.registry.gauge("depth").set(17)
        with TraceWriter(path, registry=tr.registry) as writer:
            writer.attach(tr)
            writer.write_snapshot(3.0)
        lines = list(iter_trace_lines(path))
        assert lines[0]["type"] == "meta"
        snap = [ln for ln in lines if ln["type"] == "gauges"]
        assert len(snap) == 1
        assert snap[0]["t"] == 3.0
        assert snap[0]["gauges"] == {"depth": 17}

    def test_non_json_fields_degrade_to_strings(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sim, tr = make_tracer()
        with TraceWriter(path) as writer:
            writer.attach(tr)
            tr.record("x", obj={1, 2, 3})
        (rec,) = read_trace(path)
        assert isinstance(rec.get("obj"), str)

    def test_summary(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sim, tr = make_tracer()
        with TraceWriter(path, registry=tr.registry) as writer:
            writer.attach(tr)
            sim.schedule(1.0, tr.record, "a")
            sim.schedule(4.0, tr.record, "b")
            sim.run()
            writer.write_snapshot(sim.now)
        s = trace_summary(path)
        assert s["records"] == 2
        assert s["gauge_snapshots"] == 1
        assert s["time_span"] == (1.0, 4.0)
        assert s["categories"] == {"a": 1, "b": 1}


@pytest.mark.parametrize("seed", [1, 5])
def test_every_reception_has_a_matching_transmission(tmp_path, seed):
    """PHY invariant asserted *from the exported file alone*: each clean
    reception's frame id (and source) appeared in a prior transmission."""
    path = tmp_path / "phy.jsonl"
    profile = smoke()
    cfg = ExperimentConfig(
        scheme="greedy",
        n_nodes=40,
        seed=seed,
        duration=profile.duration,
        warmup=profile.warmup,
        diffusion=profile.diffusion,
    )
    obs = ObsOptions(trace_path=path, trace_categories=("phy.tx", "phy.rx"))
    run_observed(cfg, obs)

    tx_by_frame: dict[int, dict] = {}
    rx_count = 0
    for rec in read_trace(path):
        if rec.category == "phy.tx":
            tx_by_frame[rec.get("frame")] = rec.as_dict()
        else:
            assert rec.category == "phy.rx"
            rx_count += 1
            frame = rec.get("frame")
            assert frame in tx_by_frame, f"reception of never-transmitted frame {frame}"
            tx = tx_by_frame[frame]
            assert tx["src"] == rec.get("src")
            assert rec.get("node") != tx["src"], "node received its own frame"
    assert rx_count > 0 and len(tx_by_frame) > 0


def test_export_matches_in_memory_records_on_real_run(tmp_path):
    """Lossless-export property on a full packet run: the JSONL file and
    the in-memory record list are the same sequence."""
    path = tmp_path / "full.jsonl"
    profile = smoke()
    cfg = ExperimentConfig(
        scheme="greedy",
        n_nodes=30,
        seed=3,
        duration=profile.duration,
        warmup=profile.warmup,
        diffusion=profile.diffusion,
    )
    from repro.experiments.runner import build_world

    world = build_world(cfg)
    with TraceWriter(path) as writer:
        writer.attach(world.tracer, "phy.tx", "phy.rx", "greedy.decision")
        world.sim.run(until=cfg.duration)
    assert list(read_trace(path)) == world.tracer.records()
    # and the file is genuine JSONL: one object per line
    with path.open() as fh:
        for line in fh:
            json.loads(line)
