"""Run provenance manifests and the ``repro stats`` command."""

import json

import pytest

from repro.cli import main
from repro.experiments import ExperimentConfig, run_observed
from repro.experiments.config import smoke
from repro.obs import ObsOptions
from repro.obs.manifest import (
    MANIFEST_VERSION,
    format_manifest,
    load_manifest,
    save_manifest,
)


def small_cfg(seed=2):
    profile = smoke()
    return ExperimentConfig(
        scheme="greedy",
        n_nodes=30,
        seed=seed,
        duration=profile.duration,
        warmup=profile.warmup,
        diffusion=profile.diffusion,
    )


class TestRunManifest:
    def test_run_observed_writes_manifest(self, tmp_path):
        path = tmp_path / "m.json"
        observed = run_observed(small_cfg(), ObsOptions(manifest_path=path))
        assert observed.manifest_path == path
        data = load_manifest(path)
        assert data["manifest_version"] == MANIFEST_VERSION
        assert data["kind"] == "run"
        assert data["config"]["scheme"] == "greedy"
        assert data["config"]["n_nodes"] == 30
        assert data["seed"] == 2
        assert data["wall_time_s"] > 0
        # metrics in the manifest mirror the returned metrics object
        assert data["metrics"]["events_sent"] == observed.metrics.events_sent
        assert data["metrics"]["delivery_ratio"] == pytest.approx(
            observed.metrics.delivery_ratio
        )
        # simulator block is always present for runs
        assert data["simulator"]["events_processed"] > 0
        # registry snapshot includes the new typed instruments
        hists = data["metrics_snapshot"]["histograms"]
        assert any(name.startswith("radio.frame_bytes") for name in hists)

    def test_manifest_embeds_profile_and_trace_pointers(self, tmp_path):
        manifest = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        obs = ObsOptions(profile=True, trace_path=trace, manifest_path=manifest)
        observed = run_observed(small_cfg(), obs)
        data = load_manifest(manifest)
        assert data["trace_path"] == str(trace)
        assert data["profile"]["events"] == observed.profile.events
        assert data["profile"]["callbacks"], "hot-callback table missing"

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        save_manifest({"manifest_version": 999, "kind": "run"}, path)
        with pytest.raises(ValueError, match="manifest version"):
            load_manifest(path)

    def test_manifest_is_plain_json(self, tmp_path):
        path = tmp_path / "m.json"
        run_observed(small_cfg(), ObsOptions(manifest_path=path))
        # full decode/encode round trip without custom hooks
        data = json.loads(path.read_text())
        json.dumps(data)

    def test_format_manifest_mentions_headlines(self, tmp_path):
        path = tmp_path / "m.json"
        run_observed(small_cfg(), ObsOptions(manifest_path=path))
        text = format_manifest(load_manifest(path))
        assert "run manifest" in text
        assert "greedy" in text
        assert "delivery ratio" in text
        assert "top counters" in text


class TestCli:
    def test_run_with_observability_flags(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        rc = main(
            [
                "run",
                "-n",
                "30",
                "--duration",
                "20",
                "--warmup",
                "8",
                "--profile",
                "--trace-out",
                str(trace),
                "--trace-categories",
                "phy.tx",
                "phy.rx",
                "--manifest",
                str(manifest),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "events/sec" in out
        assert manifest.exists() and trace.exists()

    def test_stats_on_manifest_and_trace(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        obs = ObsOptions(
            trace_path=trace, trace_categories=("phy.tx",), manifest_path=manifest
        )
        run_observed(small_cfg(), obs)
        capsys.readouterr()

        assert main(["stats", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "run manifest" in out

        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "phy.tx" in out

    def test_stats_on_missing_file_fails_cleanly(self, tmp_path, capsys):
        rc = main(["stats", str(tmp_path / "nope.json")])
        assert rc != 0
        assert capsys.readouterr().err
