"""Unit + integration tests for causal lineage reconstruction."""

import pytest

from repro.obs.lineage import LINEAGE_CATEGORIES, LineageIndex, format_tree
from repro.sim.trace import TraceRecord


def rec(time, category, **fields):
    return TraceRecord(time, category, tuple(fields.items()))


def small_run_records():
    """A two-source, one-relay, one-sink delivery with a merge."""
    return [
        rec(1.0, "data.gen", node=1, interest=9, src=1, seq=0),
        rec(1.1, "data.gen", node=2, interest=9, src=2, seq=0),
        rec(1.2, "data.tx", node=1, interest=9, keys=[[1, 0]], outlets=[3]),
        rec(1.3, "data.rx", node=3, interest=9, sender=1, keys=[[1, 0]], accepted=[[1, 0]]),
        rec(1.4, "data.rx", node=3, interest=9, sender=2, keys=[[2, 0]], accepted=[[2, 0]]),
        rec(1.5, "data.merge", node=3, interest=9, n_contributions=2,
            aggregates=[[[1, 0], [2, 0]]]),
        rec(1.6, "data.tx", node=3, interest=9, keys=[[1, 0], [2, 0]], outlets=[0]),
        rec(1.7, "data.rx", node=0, interest=9, sender=3,
            keys=[[1, 0], [2, 0]], accepted=[[1, 0], [2, 0]]),
        rec(1.7, "data.deliver", interest=9, sink=0, key=[1, 0]),
        rec(1.7, "data.deliver", interest=9, sink=0, key=[2, 0]),
    ]


class TestLineageIndex:
    def test_categories_are_registered_centrally(self):
        from repro.obs.options import TRACE_CATEGORIES

        for cat in LINEAGE_CATEGORIES:
            assert cat in TRACE_CATEGORIES

    def test_generated_and_delivered_keys(self):
        index = LineageIndex.from_records(small_run_records())
        assert index.source_events() == {(1, 0), (2, 0)}
        assert index.delivered_keys() == {(1, 0), (2, 0)}
        assert index.interests() == [9]

    def test_path_reconstruction(self):
        index = LineageIndex.from_records(small_run_records())
        assert index.path((1, 0)) == [1, 3, 0]
        assert index.path((2, 0)) == [2, 3, 0]

    def test_path_unknown_key_raises(self):
        index = LineageIndex.from_records(small_run_records())
        with pytest.raises(KeyError):
            index.path((99, 0))

    def test_termination(self):
        index = LineageIndex.from_records(small_run_records())
        assert index.terminates_in_generation((1, 0))
        assert not index.terminates_in_generation((99, 0))

    def test_delivery_tree(self):
        index = LineageIndex.from_records(small_run_records())
        tree = index.delivery_tree(9)
        assert tree.delivered_keys == 2
        assert tree.edges == {(1, 3): 1, (2, 3): 1, (3, 0): 2}
        assert tree.sources == {1, 2}
        assert tree.sinks == {0}
        assert tree.junctions() == [3]

    def test_merge_stats(self):
        index = LineageIndex.from_records(small_run_records())
        stats = index.merge_stats()
        assert stats["flushes"] == 1
        assert stats["mean_fan_in"] == pytest.approx(2.0)
        assert stats["items"] == 2

    def test_non_lineage_records_ignored(self):
        index = LineageIndex.from_records(
            [rec(0.0, "phy.tx", frame=1, src=0, dst=1, size=10, kind=0, cls="data")]
        )
        assert index.counts == {}
        assert index.source_events() == frozenset()

    def test_format_tree_mentions_junction(self):
        index = LineageIndex.from_records(small_run_records())
        text = format_tree(index.delivery_tree(9))
        assert "interest 9" in text
        assert "merge junction" in text


class TestLineageFromLiveRun:
    def test_smoke_run_lineage_is_consistent(self):
        from repro.experiments.config import ExperimentConfig, smoke
        from repro.experiments.runner import build_world

        cfg = ExperimentConfig.from_profile(smoke(), "greedy", 60, seed=4)
        world = build_world(cfg)
        world.tracer.enable(*LINEAGE_CATEGORIES)
        world.sim.run(until=cfg.duration)
        index = LineageIndex.from_records(world.tracer.records())
        delivered = index.delivered_keys()
        assert delivered, "smoke run delivered nothing"
        # every delivered key roots in a generation and its path starts at
        # the generating source and ends at a sink
        sinks = set(world.sinks)
        for key in delivered:
            assert index.terminates_in_generation(key)
            path = index.path(key)
            assert path[0] == key[0]
            assert path[-1] in sinks
        for interest in index.interests():
            tree = index.delivery_tree(interest)
            assert tree.delivered_keys == len(index.delivered_keys(interest))
