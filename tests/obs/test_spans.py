"""Unit tests for repro.obs.spans: ids, parenting, the bounded ring,
ingest across a (simulated) process boundary, tree assembly, and the
Chrome exporter."""

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import (
    DEFAULT_SPAN_CAPACITY,
    Span,
    SpanContext,
    SpanStore,
    make_span,
    new_span_id,
    new_trace_id,
    span_tree,
)
from repro.obs.export import spans_to_chrome_trace


class TestIdsAndLinks:
    def test_fresh_root_gets_new_trace_id(self):
        store = SpanStore()
        a = store.start("a")
        b = store.start("b")
        assert a.trace_id != b.trace_id
        assert a.parent_id is None

    def test_child_inherits_trace_and_links_parent(self):
        store = SpanStore()
        root = store.start("root")
        child = store.start("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_span_context_parents_like_a_span(self):
        store = SpanStore()
        ctx = SpanContext(new_trace_id(), new_span_id())
        child = store.start("child", parent=ctx)
        assert child.trace_id == ctx.trace_id
        assert child.parent_id == ctx.span_id

    def test_ids_are_hex_strings(self):
        assert len(new_trace_id()) == 16
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    def test_end_is_idempotent(self):
        store = SpanStore()
        span = store.start("x")
        span.end()
        first_end = span.end_s
        span.end(status="error")
        assert span.end_s == first_end
        assert span.status == "ok"
        assert len(store) == 1

    def test_attributes_via_set_and_end(self):
        store = SpanStore()
        span = store.start("x", a=1).set(b=2)
        span.end(c=3)
        (payload,) = store.recent()
        assert payload["attributes"] == {"a": 1, "b": 2, "c": 3}


class TestSpanStore:
    def test_ring_is_bounded_and_counts_drops(self):
        registry = MetricsRegistry()
        store = SpanStore(capacity=4, registry=registry)
        for i in range(10):
            store.start(f"s{i}").end()
        assert len(store) == 4
        assert store.dropped == 6
        assert registry.value("spans.dropped") == 6
        assert registry.value("spans.started") == 10
        # oldest fell off the back, newest retained
        assert [s["name"] for s in store.recent()] == ["s9", "s8", "s7", "s6"]

    def test_active_gauge_tracks_open_spans(self):
        registry = MetricsRegistry()
        store = SpanStore(registry=registry)
        a = store.start("a")
        b = store.start("b")
        assert registry.value("spans.active") == 2
        a.end()
        b.end()
        assert registry.value("spans.active") == 0

    def test_trace_includes_active_spans(self):
        store = SpanStore()
        root = store.start("root")
        store.start("done", parent=root).end()
        spans = store.trace(root.trace_id)
        assert {s["name"] for s in spans} == {"root", "done"}
        in_flight = next(s for s in spans if s["name"] == "root")
        assert in_flight["in_flight"] is True

    def test_recent_filters_by_name_prefix_and_trace(self):
        store = SpanStore()
        r1 = store.start("http.request")
        store.start("http.parse", parent=r1).end()
        r1.end()
        store.start("job").end()
        assert [s["name"] for s in store.recent(name="job")] == ["job"]
        assert {s["name"] for s in store.recent(name="http.")} == {
            "http.request",
            "http.parse",
        }
        assert all(
            s["trace_id"] == r1.trace_id for s in store.recent(trace_id=r1.trace_id)
        )
        assert len(store.recent(limit=1)) == 1

    def test_disabled_store_records_nothing_but_ids_work(self):
        store = SpanStore(capacity=0)
        assert not store.enabled
        span = store.start("x")
        child = store.start("y", parent=span)
        assert child.trace_id == span.trace_id  # propagation still works
        span.end()
        child.end()
        assert len(store) == 0
        assert store.recent() == []
        assert store.trace(span.trace_id) == []
        assert store.ingest([make_span("z", "t", "s", None, 0.0, 1.0)]) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanStore(capacity=-1)

    def test_default_capacity(self):
        assert SpanStore().capacity == DEFAULT_SPAN_CAPACITY

    def test_ingest_adopts_worker_payloads(self):
        store = SpanStore()
        parent = store.start("worker.execute")
        worker_payload = make_span(
            "worker.run",
            parent.trace_id,
            new_span_id(),
            parent.span_id,
            1.0,
            2.5,
            {"worker.pid": 1234},
        )
        kept = store.ingest([worker_payload, {"not": "a span"}, "junk"])
        assert kept == 1
        parent.end()
        spans = store.trace(parent.trace_id)
        assert {s["name"] for s in spans} == {"worker.execute", "worker.run"}
        ingested = next(s for s in spans if s["name"] == "worker.run")
        assert ingested["duration_s"] == pytest.approx(1.5)

    def test_event_is_zero_duration(self):
        store = SpanStore()
        span = store.event("dedup", verdict="store-hit")
        assert span.ended
        (payload,) = store.recent()
        assert payload["duration_s"] < 0.1
        assert payload["attributes"]["verdict"] == "store-hit"

    def test_stats(self):
        store = SpanStore(capacity=8)
        store.start("a").end()
        live = store.start("b")
        stats = store.stats()
        assert stats == {
            "capacity": 8,
            "retained": 1,
            "active": 1,
            "started": 2,
            "dropped": 0,
        }
        live.end()


class TestSpanTree:
    def _payload(self, name, trace, sid, parent, start):
        return make_span(name, trace, sid, parent, start, start + 1.0)

    def test_nests_children_under_parents(self):
        t = new_trace_id()
        spans = [
            self._payload("root", t, "r", None, 0.0),
            self._payload("b", t, "b", "r", 2.0),
            self._payload("a", t, "a", "r", 1.0),
            self._payload("a.1", t, "a1", "a", 1.5),
        ]
        (root,) = span_tree(spans)
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == ["a", "b"]  # start order
        assert root["children"][0]["children"][0]["name"] == "a.1"

    def test_orphans_become_roots(self):
        t = new_trace_id()
        spans = [self._payload("orphan", t, "o", "evicted-parent", 5.0)]
        roots = span_tree(spans)
        assert [r["name"] for r in roots] == ["orphan"]

    def test_empty(self):
        assert span_tree([]) == []


class TestChromeExport:
    def test_export_and_reload(self, tmp_path):
        store = SpanStore()
        root = store.start("http.request")
        store.start("job", parent=root, job="job-000001").end()
        root.end()
        out = spans_to_chrome_trace(store.recent(), tmp_path / "spans.json")
        data = json.loads(out.read_text())
        xs = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        assert {e["name"] for e in xs} == {"http.request", "job"}
        # ids and attributes ride in args; raw spans preserved losslessly
        job_ev = next(e for e in xs if e["name"] == "job")
        assert job_ev["args"]["job"] == "job-000001"
        assert job_ev["args"]["trace_id"] == root.trace_id
        assert {s["name"] for s in data["otherData"]["spans"]} == {
            "http.request",
            "job",
        }
        # all spans of one trace share a track; timestamps rebased to 0
        assert len({e["tid"] for e in xs}) == 1
        assert min(e["ts"] for e in xs) == 0.0

    def test_export_merges_timeline_counters(self, tmp_path):
        store = SpanStore()
        store.start("run").end()
        timeline = {
            "times": [0.0, 1.0],
            "probes": [{"name": "nodes.alive", "kind": "int", "values": [5, 4]}],
            "interval": 1.0,
            "duration": 1.0,
        }
        out = spans_to_chrome_trace(
            store.recent(), tmp_path / "merged.json", timeline=timeline
        )
        data = json.loads(out.read_text())
        phases = {e.get("ph") for e in data["traceEvents"]}
        assert "X" in phases and "C" in phases
        assert data["otherData"]["timeline"]["probes"][0]["name"] == "nodes.alive"
