"""Tests for artifact loading, classification, and structured diffs."""

import json

import pytest

from repro.obs.diff import (
    diff_artifacts,
    diff_figure_cells,
    diff_run_metrics,
    format_diff,
    load_artifact,
)


def run_metrics(**overrides):
    base = {
        "scheme": "greedy",
        "n_nodes": 60,
        "seed": 4,
        "avg_dissipated_energy": 0.0001,
        "avg_delay": 0.2,
        "delivery_ratio": 0.99,
        "total_energy_j": 3.0,
        "distinct_delivered": 100,
        "events_sent": 101,
        "mean_degree": 7.5,
        "counters": {"radio.tx": 50, "radio.rx": 70},
        "energy_by_class": {"data": 2.0, "interest": 1.0},
    }
    base.update(overrides)
    return base


def write_json(path, payload):
    path.write_text(json.dumps(payload))
    return path


class TestLoadArtifact:
    def test_run_manifest(self, tmp_path):
        p = write_json(tmp_path / "m.json", {"manifest_version": 1, "kind": "run",
                                             "metrics": run_metrics()})
        kind, data = load_artifact(p)
        assert kind == "run"
        assert data["metrics"]["scheme"] == "greedy"

    def test_store_entry(self, tmp_path):
        p = write_json(tmp_path / "e.json", {"store_version": 2, "key": "ab",
                                             "metrics": run_metrics()})
        assert load_artifact(p)[0] == "store-entry"

    def test_figure_result(self, tmp_path):
        p = write_json(tmp_path / "f.json", {"format_version": 1, "cells": []})
        assert load_artifact(p)[0] == "figure-result"

    def test_jsonl_trace_rejected(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"type": "record"}\n{"type": "record"}\n')
        with pytest.raises(ValueError, match="audit"):
            load_artifact(p)

    def test_unknown_shape_rejected(self, tmp_path):
        p = write_json(tmp_path / "x.json", {"hello": 1})
        with pytest.raises(ValueError, match="unrecognized"):
            load_artifact(p)


class TestDiffRunMetrics:
    def test_identical(self):
        d = diff_run_metrics(run_metrics(), run_metrics())
        assert d["equal"] is True

    def test_metric_and_identity_changes(self):
        d = diff_run_metrics(run_metrics(), run_metrics(seed=5, total_energy_j=4.0))
        assert d["equal"] is False
        assert "seed" in d["identity"]
        assert d["metrics"]["total_energy_j"]["delta"] == pytest.approx(1.0)
        assert d["metrics"]["total_energy_j"]["rel"] == pytest.approx(1 / 3)

    def test_energy_class_changes(self):
        d = diff_run_metrics(
            run_metrics(),
            run_metrics(energy_by_class={"data": 2.5, "ack": 0.1}),
        )
        assert set(d["energy_by_class"]) == {"data", "interest", "ack"}
        assert d["energy_by_class"]["interest"]["b"] == 0.0

    def test_counter_added_removed_changed(self):
        d = diff_run_metrics(
            run_metrics(counters={"radio.tx": 50, "old": 1}),
            run_metrics(counters={"radio.tx": 60, "new": 2}),
        )
        assert d["counters"]["added"] == {"new": 2}
        assert d["counters"]["removed"] == {"old": 1}
        assert d["counters"]["changed"]["radio.tx"]["delta"] == 10


class TestDiffFigureCells:
    def cells(self):
        return [
            {"scheme": "greedy", "x": 50.0, "energy": 1.0, "energy_stdev": 0.1,
             "delay": 0.2, "ratio": 0.9, "n_runs": 2, "distinct_delivered": 10},
            {"scheme": "opportunistic", "x": 50.0, "energy": 2.0, "energy_stdev": 0.1,
             "delay": 0.3, "ratio": 0.8, "n_runs": 2, "distinct_delivered": 9},
        ]

    def test_identical(self):
        assert diff_figure_cells(self.cells(), self.cells())["equal"] is True

    def test_changed_cell_and_missing_cell(self):
        a = self.cells()
        b = [dict(a[0], energy=1.5)]
        d = diff_figure_cells(a, b)
        assert d["equal"] is False
        assert d["only_a"] == ["opportunistic@50"]
        assert d["cells"]["greedy@50"]["energy"]["delta"] == pytest.approx(0.5)


class TestDiffArtifacts:
    def test_manifest_vs_store_entry(self, tmp_path):
        a = write_json(tmp_path / "a.json", {"manifest_version": 1, "kind": "run",
                                             "metrics": run_metrics()})
        b = write_json(tmp_path / "b.json", {"store_version": 2,
                                             "metrics": run_metrics(seed=5)})
        d = diff_artifacts(a, b)
        assert d["kind"] == "run"
        assert d["a"]["kind"] == "run"
        assert d["b"]["kind"] == "store-entry"
        assert "seed" in d["identity"]

    def test_mixed_families_rejected(self, tmp_path):
        a = write_json(tmp_path / "a.json", {"manifest_version": 1, "kind": "run",
                                             "metrics": run_metrics()})
        b = write_json(tmp_path / "b.json", {"format_version": 1, "cells": []})
        with pytest.raises(ValueError, match="per-run"):
            diff_artifacts(a, b)

    def test_json_round_trip(self, tmp_path):
        a = write_json(tmp_path / "a.json", {"manifest_version": 1, "kind": "run",
                                             "metrics": run_metrics()})
        d = diff_artifacts(a, a)
        json.loads(json.dumps(d))  # machine mode must serialize cleanly
        assert d["equal"] is True


class TestFormatDiff:
    def make_diff(self, tmp_path, metrics_b):
        a = write_json(tmp_path / "a.json", {"manifest_version": 1, "kind": "run",
                                             "metrics": run_metrics()})
        b = write_json(tmp_path / "b.json", {"manifest_version": 1, "kind": "run",
                                             "metrics": metrics_b})
        return diff_artifacts(a, b)

    def test_identical_message(self, tmp_path):
        text = format_diff(self.make_diff(tmp_path, run_metrics()))
        assert "identical" in text

    def test_changes_rendered(self, tmp_path):
        text = format_diff(self.make_diff(
            tmp_path, run_metrics(total_energy_j=4.0, seed=9)))
        assert "total_energy_j" in text
        assert "different experiments" in text
        assert "+33.33%" in text
