"""Timeline recorder unit tests: cadence, columnar storage, round trips,
derived statistics, rendering, and the export/diff integrations."""

import json
from array import array

import pytest

from repro.obs import (
    Timeline,
    chrome_trace_to_timeline,
    diff_timelines,
    format_timeline,
    load_timeline,
    save_timeline,
    sparkline,
    timeline_from_trace_jsonl,
    timeline_to_chrome_trace,
)
from repro.sim import Simulator


def recorded(interval: float, duration: float) -> Timeline:
    """Drive one counting probe through a bare simulator."""
    sim = Simulator()
    tl = Timeline(interval)
    ticks = {"n": 0}
    tl.register("ticks", lambda: ticks["n"], "int")
    tl.register("t", lambda: sim.now, "float")
    tl.attach(sim, duration)
    sim.schedule(duration / 2, lambda: ticks.__setitem__("n", 7))
    sim.run(until=duration)
    tl.finalize(sim.now)
    return tl


class TestCadence:
    def test_partial_final_interval_gets_closing_sample(self):
        # duration 10, interval 3: ticks at 0,3,6,9 plus the finalize()
        # sample at exactly the horizon — the last partial interval is
        # never dropped.
        tl = recorded(3.0, 10.0)
        assert list(tl.times) == [0.0, 3.0, 6.0, 9.0, 10.0]

    def test_exact_division_does_not_double_sample_the_horizon(self):
        # duration 10, interval 5: the tick at t=5 must NOT reschedule to
        # t=10 (strict inequality) — finalize() owns the horizon sample.
        tl = recorded(5.0, 10.0)
        assert list(tl.times) == [0.0, 5.0, 10.0]

    def test_interval_longer_than_run(self):
        tl = recorded(50.0, 10.0)
        assert list(tl.times) == [0.0, 10.0]

    def test_finalize_is_idempotent(self):
        tl = recorded(5.0, 10.0)
        tl.finalize(10.0)
        tl.finalize(10.0)
        assert tl.n_samples == 3

    def test_attach_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            Timeline(0.0).attach(Simulator(), 10.0)
        with pytest.raises(ValueError, match="interval"):
            Timeline(None).attach(Simulator(), 10.0)


class TestColumns:
    def test_columnar_typecodes(self):
        tl = recorded(5.0, 10.0)
        ints = tl._by_name["ticks"].values
        floats = tl._by_name["t"].values
        assert isinstance(ints, array) and ints.typecode == "q"
        assert isinstance(floats, array) and floats.typecode == "d"

    def test_probe_values_parallel_to_times(self):
        tl = recorded(3.0, 10.0)
        times, values = tl.series("t")
        assert times == values  # the "t" probe samples sim.now itself
        _, ticks = tl.series("ticks")
        assert ticks == [0, 0, 7, 7, 7]

    def test_register_after_sampling_raises(self):
        tl = recorded(5.0, 10.0)
        with pytest.raises(RuntimeError, match="after sampling"):
            tl.register("late", lambda: 0)

    def test_duplicate_probe_name_raises(self):
        tl = Timeline(1.0)
        tl.register("x", lambda: 0)
        with pytest.raises(ValueError, match="duplicate"):
            tl.register("x", lambda: 1)

    def test_bad_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            Timeline(1.0).register("x", lambda: 0, kind="str")

    def test_nbytes_counts_every_column(self):
        tl = recorded(3.0, 10.0)
        # one shared float time column + one int + one float probe column
        assert tl.nbytes() == 5 * 8 * 3


class TestDerived:
    def test_crossing_time_interpolates(self):
        tl = Timeline(1.0)
        tl.register("e", lambda: 0.0)
        for t, v in [(0.0, 0.0), (10.0, 100.0)]:
            tl.times.append(t)
            tl._by_name["e"].values.append(v)
        assert tl.crossing_time("e", 50.0) == pytest.approx(5.0)
        assert tl.crossing_time("e", 100.0) == pytest.approx(10.0)
        assert tl.crossing_time("e", 101.0) is None
        assert tl.crossing_time("e", 50.0, interpolate=False) == 10.0
        assert tl.crossing_time("missing", 1.0) is None

    def test_derived_alive_and_half_stats(self):
        tl = Timeline(1.0)
        for name in ("nodes.alive", "energy.total", "data.delivered"):
            tl.register(name, lambda: 0, "float")
        rows = [
            (0.0, 10, 0.0, 0),
            (1.0, 10, 2.0, 1),
            (2.0, 8, 4.0, 3),
            (3.0, 8, 8.0, 4),
        ]
        for t, alive, energy, delivered in rows:
            tl.times.append(t)
            tl._by_name["nodes.alive"].values.append(alive)
            tl._by_name["energy.total"].values.append(energy)
            tl._by_name["data.delivered"].values.append(delivered)
        d = tl.derived()
        assert d["time_to_first_death"] == 2.0
        assert d["min_alive"] == 8.0
        assert d["half_energy_time"] == pytest.approx(2.0)  # 4.0 J of 8.0 J
        assert d["half_delivery_time"] == 2.0  # first sample >= 2 deliveries

    def test_accounting_block_shape(self):
        tl = recorded(3.0, 10.0)
        block = tl.accounting("tl.json")
        assert block["samples"] == 5
        assert block["interval"] == 3.0
        assert block["probes"] == ["ticks", "t"]
        assert block["bytes"] == tl.nbytes()
        assert block["path"] == "tl.json"
        assert "derived" in block


class TestSerialization:
    def test_round_trip_is_lossless(self, tmp_path):
        tl = recorded(3.0, 10.0)
        path = save_timeline(tl, tmp_path / "tl.json")
        back = load_timeline(path)
        assert back.as_dict() == tl.as_dict()
        assert back._by_name["ticks"].values.typecode == "q"

    def test_from_dict_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            Timeline.from_dict({"timeline_version": 99})

    def test_loaded_timeline_has_no_callables(self, tmp_path):
        tl = recorded(3.0, 10.0)
        back = load_timeline(save_timeline(tl, tmp_path / "tl.json"))
        assert all(p.fn is None for p in back.probes)


class TestChromeTrace:
    def test_round_trip_via_other_data_is_exact(self, tmp_path):
        tl = recorded(3.0, 10.0)
        path = timeline_to_chrome_trace(tl, tmp_path / "trace.json")
        back = chrome_trace_to_timeline(path)
        assert back.as_dict() == tl.as_dict()

    def test_counter_events_carry_microseconds(self, tmp_path):
        tl = recorded(5.0, 10.0)
        data = json.loads(timeline_to_chrome_trace(tl, tmp_path / "t.json").read_text())
        counters = [e for e in data["traceEvents"] if e.get("ph") == "C"]
        assert {e["name"] for e in counters} == {"ticks", "t"}
        ts = sorted({e["ts"] for e in counters})
        assert ts == [0.0, 5_000_000.0, 10_000_000.0]

    def test_reconstruction_from_counters_alone(self, tmp_path):
        tl = recorded(5.0, 10.0)
        path = timeline_to_chrome_trace(tl, tmp_path / "t.json")
        data = json.loads(path.read_text())
        del data["otherData"]  # force the counter-event fallback
        path.write_text(json.dumps(data))
        back = chrome_trace_to_timeline(path)
        assert list(back.times) == list(tl.times)
        assert back.series("ticks")[1] == [0, 7, 7]

    def test_rejects_non_trace(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            chrome_trace_to_timeline(path)


class TestTraceJsonl:
    def test_gauge_snapshots_become_samples(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            {"type": "meta", "trace_version": 1},
            {"type": "gauges", "t": 0.0, "gauges": {"a": 1.0, "b": 2.0}},
            {"type": "record", "t": 1.0, "category": "x"},
            {"type": "gauges", "t": 5.0, "gauges": {"a": 3.0}},
        ]
        path.write_text("\n".join(json.dumps(x) for x in lines) + "\n")
        tl = timeline_from_trace_jsonl(path)
        assert list(tl.times) == [0.0, 5.0]
        assert tl.series("a")[1] == [1.0, 3.0]
        assert tl.series("b")[1] == [2.0, 0.0]  # missing gauge -> 0.0
        assert tl.interval == 5.0

    def test_trace_without_gauges_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"type": "meta", "trace_version": 1}) + "\n")
        with pytest.raises(ValueError, match="gauge"):
            timeline_from_trace_jsonl(path)


class TestRendering:
    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        s = sparkline(list(range(100)), width=10)
        assert len(s) == 10
        assert s[0] == "▁" and s[-1] == "█"
        # bucket-max downsampling keeps short spikes visible
        spiky = [0.0] * 50 + [9.0] + [0.0] * 49
        assert "█" in sparkline(spiky, width=10)

    def test_format_timeline_table(self):
        tl = recorded(3.0, 10.0)
        out = format_timeline(tl)
        assert "5 samples" in out
        assert "ticks" in out and "derived" not in out  # no derived probes here
        only = format_timeline(tl, probes=["ticks", "nope"])
        assert "unknown probes skipped: nope" in only
        assert "\nt " not in only


class TestDiff:
    def test_equal_timelines(self):
        a, b = recorded(3.0, 10.0), recorded(3.0, 10.0)
        diff = diff_timelines(a.as_dict(), b.as_dict())
        assert diff["equal"] is True
        assert diff["kind"] == "timeline"

    def test_value_and_shape_divergence(self):
        a, b = recorded(3.0, 10.0), recorded(3.0, 10.0)
        bd = b.as_dict()
        bd["probes"][0]["values"][-1] += 5
        diff = diff_timelines(a.as_dict(), bd)
        assert diff["equal"] is False
        assert "ticks" in diff["probes"]
        assert diff["probes"]["ticks"]["n_diffs"] == 1

    def test_probe_set_divergence(self):
        a, b = recorded(3.0, 10.0), recorded(3.0, 10.0)
        bd = b.as_dict()
        bd["probes"] = bd["probes"][:1]
        diff = diff_timelines(a.as_dict(), bd)
        assert diff["equal"] is False
        assert diff["only_a"] == ["t"]
