"""Unit tests for aggregation size models."""

import pytest

from repro.aggregation.functions import (
    LinearAggregation,
    NoAggregation,
    OutlineAggregation,
    PerfectAggregation,
    TimestampAggregation,
    by_name,
)


class TestPerfect:
    def test_constant_size(self):
        fn = PerfectAggregation()
        assert fn.size(1) == 64
        assert fn.size(5) == 64
        assert fn.size(100) == 64

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            PerfectAggregation().size(0)


class TestLinear:
    def test_paper_formula(self):
        # z(S_i) = d_i * |x| + h with |x| = 28 bytes and h = 36 bytes
        fn = LinearAggregation()
        assert fn.size(1) == 28 + 36
        assert fn.size(5) == 5 * 28 + 36

    def test_single_item_matches_event_size(self):
        # One 28-byte item plus the 36-byte header is exactly one event.
        assert LinearAggregation().size(1) == PerfectAggregation().size(1) == 64

    def test_grows_linearly(self):
        fn = LinearAggregation()
        assert fn.size(10) - fn.size(9) == 28


class TestNoAggregation:
    def test_single_item_only(self):
        fn = NoAggregation()
        assert fn.size(1) == 64
        with pytest.raises(ValueError):
            fn.size(2)

    def test_max_items(self):
        assert NoAggregation().max_items == 1


class TestTimestamp:
    def test_first_item_full_rest_delta(self):
        fn = TimestampAggregation()
        assert fn.size(1) == 36 + 28
        assert fn.size(3) == 36 + 28 + 2 * 12

    def test_cheaper_than_linear_for_many_items(self):
        assert TimestampAggregation().size(10) < LinearAggregation().size(10)


class TestOutline:
    def test_saturates_at_vertex_cap(self):
        fn = OutlineAggregation(max_vertices=4)
        assert fn.size(2) == 36 + 2 * 8
        assert fn.size(4) == fn.size(100) == 36 + 4 * 8


class TestRegistry:
    def test_lookup_by_name(self):
        assert by_name("perfect").name == "perfect"
        assert by_name("linear").name == "linear"
        assert by_name("none").name == "none"
        assert by_name("timestamp").name == "timestamp"
        assert by_name("outline").name == "outline"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            by_name("magic")
