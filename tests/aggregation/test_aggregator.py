"""Unit tests for the aggregation buffer."""

import pytest

from repro.aggregation.aggregator import AggregationBuffer
from repro.aggregation.functions import LinearAggregation, NoAggregation, PerfectAggregation
from repro.diffusion.messages import AggregateMsg, DataItem


def incoming(items, cost, interest=1):
    msg = AggregateMsg(interest_id=interest, items=tuple(items), energy_cost=cost, size=64)
    return msg


class TestFilling:
    def test_empty_buffer(self):
        buf = AggregationBuffer(PerfectAggregation())
        assert buf.empty
        assert buf.flush().aggregates == ()

    def test_add_local(self):
        buf = AggregationBuffer(PerfectAggregation())
        buf.add_local(DataItem(1, 1, 0.0))
        assert not buf.empty
        assert buf.pending_count() == 1
        assert buf.pending_sources() == {1}

    def test_add_incoming_only_accepted(self):
        buf = AggregationBuffer(PerfectAggregation())
        items = [DataItem(1, 1, 0.0), DataItem(2, 1, 0.0)]
        buf.add_incoming(incoming(items, 3.0), accepted=[items[0]], tag="n5")
        assert buf.pending_count() == 1

    def test_empty_accepted_ignored(self):
        buf = AggregationBuffer(PerfectAggregation())
        buf.add_incoming(incoming([DataItem(1, 1, 0.0)], 3.0), accepted=[], tag="n5")
        assert buf.empty

    def test_duplicate_items_merged(self):
        buf = AggregationBuffer(PerfectAggregation())
        item = DataItem(1, 1, 0.0)
        buf.add_local(item)
        buf.add_incoming(incoming([item], 3.0), accepted=[item], tag="n5")
        assert buf.pending_count() == 1


class TestFlushCosts:
    def test_single_local_item_costs_one_hop(self):
        buf = AggregationBuffer(PerfectAggregation())
        buf.add_local(DataItem(1, 1, 0.0))
        result = buf.flush()
        assert len(result.aggregates) == 1
        assert result.aggregates[0].cost == pytest.approx(1.0)

    def test_paper_fig4a_outgoing_cost(self):
        # S1 (w=5) + S2 (w=6) cover; outgoing cost 12.
        buf = AggregationBuffer(PerfectAggregation())
        a1, a2 = DataItem(10, 1, 0.0), DataItem(10, 2, 0.0)
        b1, b2 = DataItem(20, 1, 0.0), DataItem(20, 2, 0.0)
        buf.add_incoming(incoming([a1, a2, b1], 5.0), accepted=[a1, a2, b1], tag="G")
        buf.add_incoming(incoming([b1, b2], 6.0), accepted=[b2], tag="H")
        buf.add_incoming(incoming([a2, b2], 7.0), accepted=[], tag="K")
        result = buf.flush()
        assert len(result.aggregates) == 1
        agg = result.aggregates[0]
        assert set(i.key for i in agg.items) == {(10, 1), (10, 2), (20, 1), (20, 2)}
        assert agg.cost == pytest.approx(12.0)
        assert set(result.cover_tags) == {"G", "H"}

    def test_local_items_are_free_contributions(self):
        buf = AggregationBuffer(PerfectAggregation())
        buf.add_local(DataItem(1, 1, 0.0))
        buf.add_incoming(
            incoming([DataItem(2, 1, 0.0)], 4.0),
            accepted=[DataItem(2, 1, 0.0)],
            tag="up",
        )
        result = buf.flush()
        assert result.aggregates[0].cost == pytest.approx(4.0 + 0.0 + 1.0)

    def test_flush_clears_buffer(self):
        buf = AggregationBuffer(PerfectAggregation())
        buf.add_local(DataItem(1, 1, 0.0))
        buf.flush()
        assert buf.empty
        assert buf.flush().aggregates == ()


class TestPacking:
    def test_perfect_merges_everything_into_one_packet(self):
        buf = AggregationBuffer(PerfectAggregation())
        for src in range(5):
            buf.add_local(DataItem(src, 1, 0.0))
        result = buf.flush()
        assert len(result.aggregates) == 1
        assert result.aggregates[0].size == 64
        assert len(result.aggregates[0].items) == 5

    def test_linear_size_grows_with_items(self):
        buf = AggregationBuffer(LinearAggregation())
        for src in range(3):
            buf.add_local(DataItem(src, 1, 0.0))
        result = buf.flush()
        assert result.aggregates[0].size == 3 * 28 + 36

    def test_no_aggregation_splits_per_item(self):
        buf = AggregationBuffer(NoAggregation())
        for src in range(3):
            buf.add_local(DataItem(src, 1, 0.0))
        result = buf.flush()
        assert len(result.aggregates) == 3
        assert all(len(a.items) == 1 for a in result.aggregates)
        assert all(a.size == 64 for a in result.aggregates)

    def test_item_identity_preserved(self):
        buf = AggregationBuffer(PerfectAggregation())
        items = [DataItem(s, 1, 0.5) for s in range(4)]
        for it in items:
            buf.add_local(it)
        result = buf.flush()
        assert result.item_count == 4
        assert {i.key for a in result.aggregates for i in a.items} == {
            it.key for it in items
        }
