"""Unit tests for the weighted set-cover solvers, including the paper's
fig-4 worked examples."""

import random

import pytest

from repro.aggregation.setcover import (
    CoverResult,
    SetCoverError,
    WeightedSubset,
    exact_weighted_set_cover,
    greedy_weighted_set_cover,
    randomized_set_cover,
    transform_to_sources,
)


def subsets(*specs):
    return [WeightedSubset(frozenset(e), w, tag=i) for i, (e, w) in enumerate(specs)]


class TestGreedyBasics:
    def test_empty_universe(self):
        assert greedy_weighted_set_cover([], []) == CoverResult((), 0.0)

    def test_single_subset(self):
        fam = subsets((["a", "b"], 3.0))
        cover = greedy_weighted_set_cover(["a", "b"], fam)
        assert cover.chosen == (0,)
        assert cover.weight == 3.0

    def test_uncoverable_raises(self):
        fam = subsets((["a"], 1.0))
        with pytest.raises(SetCoverError):
            greedy_weighted_set_cover(["a", "b"], fam)

    def test_covers_all_elements(self):
        fam = subsets((["a", "b"], 2.0), (["b", "c"], 2.0), (["c", "d"], 2.0))
        cover = greedy_weighted_set_cover("abcd", fam)
        covered = frozenset().union(*(fam[i].elements for i in cover.chosen))
        assert covered >= frozenset("abcd")

    def test_zero_weight_preferred(self):
        fam = subsets((["a"], 5.0), (["a"], 0.0))
        cover = greedy_weighted_set_cover(["a"], fam)
        assert cover.chosen == (1,)
        assert cover.weight == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedSubset(frozenset("a"), -1.0)

    def test_tags(self):
        fam = [WeightedSubset(frozenset("ab"), 1.0, tag="origin")]
        cover = greedy_weighted_set_cover("ab", fam)
        assert cover.tags(fam) == ["origin"]


class TestPaperExample:
    """Fig 4(a): S1={a1,a2,b1} w=5, S2={b1,b2} w=6, S3={a2,b2} w=7."""

    FAMILY = subsets(
        ((["a1", "a2", "b1"]), 5.0),
        ((["b1", "b2"]), 6.0),
        ((["a2", "b2"]), 7.0),
    )
    UNIVERSE = ["a1", "a2", "b1", "b2"]

    def test_greedy_selects_s1_then_s2(self):
        cover = greedy_weighted_set_cover(self.UNIVERSE, self.FAMILY)
        assert set(cover.chosen) == {0, 1}
        assert cover.weight == 11.0

    def test_outgoing_cost_matches_paper(self):
        # "L then sends an outgoing aggregate ... with associated energy
        # cost w4 = w1 + w2 + 1 = 12"
        cover = greedy_weighted_set_cover(self.UNIVERSE, self.FAMILY)
        assert cover.weight + 1.0 == 12.0

    def test_greedy_matches_exact_here(self):
        exact = exact_weighted_set_cover(self.UNIVERSE, self.FAMILY)
        assert exact.weight == 11.0

    def test_source_transformation_fig4b(self):
        # S1*={A,B} w1*=5*2/3, S2*={B} w2*=6*1/2=3, S3*={A,B} w3*=7*2/2=7
        source_of = {"a1": "A", "a2": "A", "b1": "B", "b2": "B"}
        transformed = transform_to_sources(self.FAMILY, source_of)
        assert transformed[0].elements == {"A", "B"}
        assert transformed[0].weight == pytest.approx(10.0 / 3.0)
        assert transformed[1].elements == {"B"}
        assert transformed[1].weight == pytest.approx(3.0)
        assert transformed[2].elements == {"A", "B"}
        assert transformed[2].weight == pytest.approx(7.0)

    def test_source_cover_selects_only_s1(self):
        # Fig 4(b): "S1* is selected as the only subset in C*. Therefore,
        # L negatively reinforces H and K."
        source_of = {"a1": "A", "a2": "A", "b1": "B", "b2": "B"}
        transformed = transform_to_sources(self.FAMILY, source_of)
        cover = greedy_weighted_set_cover({"A", "B"}, transformed)
        assert cover.chosen == (0,)


class TestPruning:
    def test_redundant_subset_removed(self):
        # Greedy may pick a subset later made redundant; pruning drops it.
        fam = subsets(
            (["a", "b", "c"], 1.0),
            (["d"], 1.0),
            (["a", "b", "c", "d"], 2.5),
        )
        cover = greedy_weighted_set_cover("abcd", fam)
        covered = frozenset().union(*(fam[i].elements for i in cover.chosen))
        assert covered >= frozenset("abcd")
        # No chosen subset may be fully covered by the others.
        for idx in cover.chosen:
            others = frozenset().union(
                *(fam[j].elements for j in cover.chosen if j != idx), frozenset()
            )
            assert not fam[idx].elements <= others


class TestExact:
    def test_exact_beats_or_matches_greedy(self):
        rng = random.Random(5)
        for _ in range(25):
            n_elems = rng.randint(1, 6)
            universe = list(range(n_elems))
            fam = []
            for _ in range(rng.randint(1, 8)):
                k = rng.randint(1, n_elems)
                fam.append(
                    WeightedSubset(frozenset(rng.sample(universe, k)), rng.uniform(0.1, 5))
                )
            fam.append(WeightedSubset(frozenset(universe), 10.0))  # ensure coverable
            greedy = greedy_weighted_set_cover(universe, fam)
            exact = exact_weighted_set_cover(universe, fam)
            assert exact.weight <= greedy.weight + 1e-9

    def test_exact_refuses_large_instances(self):
        fam = [WeightedSubset(frozenset([i]), 1.0) for i in range(30)]
        with pytest.raises(SetCoverError):
            exact_weighted_set_cover(range(30), fam, max_subsets=24)

    def test_exact_empty_universe(self):
        assert exact_weighted_set_cover([], []).weight == 0.0

    def test_exact_simple_optimal(self):
        # Greedy ratio trap: one big cheap-ish set beats two cheaper halves.
        fam = subsets((["a"], 1.0), (["b"], 1.0), (["a", "b"], 1.5))
        exact = exact_weighted_set_cover("ab", fam)
        assert exact.weight == pytest.approx(1.5)
        assert exact.chosen == (2,)


class TestRandomized:
    def test_valid_cover(self):
        rng = random.Random(1)
        fam = subsets((["a", "b"], 2.0), (["b", "c"], 2.0), (["a", "c"], 2.0))
        cover = randomized_set_cover("abc", fam, rng)
        covered = frozenset().union(*(fam[i].elements for i in cover.chosen))
        assert covered >= frozenset("abc")

    def test_no_worse_than_greedy_often(self):
        rng = random.Random(2)
        fam = subsets((["a"], 1.0), (["b"], 1.0), (["a", "b"], 1.5))
        cover = randomized_set_cover("ab", fam, rng, rounds=64)
        assert cover.weight <= 2.0 + 1e-9

    def test_uncoverable_raises(self):
        with pytest.raises(SetCoverError):
            randomized_set_cover("ab", subsets((["a"], 1.0)), random.Random(1))


class TestTransform:
    def test_empty_subset_rejected(self):
        with pytest.raises(ValueError):
            transform_to_sources([WeightedSubset(frozenset(), 1.0)], {})

    def test_weight_rescaling_preserves_cost_ratio(self):
        # r* = w*/|S*| must equal r = w/|S| by construction.
        fam = [WeightedSubset(frozenset(["x1", "x2", "y1"]), 9.0)]
        out = transform_to_sources(fam, {"x1": "X", "x2": "X", "y1": "Y"})
        assert out[0].weight / len(out[0].elements) == pytest.approx(9.0 / 3.0)
