"""Tests for the alternative set-cover solvers (Lagrangian, genetic)."""

import random

import pytest

from repro.aggregation.setcover import (
    SetCoverError,
    WeightedSubset,
    exact_weighted_set_cover,
    greedy_weighted_set_cover,
)
from repro.aggregation.solvers import genetic_set_cover, lagrangian_set_cover


def subsets(*specs):
    return [WeightedSubset(frozenset(e), w, tag=i) for i, (e, w) in enumerate(specs)]


def random_instance(rng, max_elems=7):
    n = rng.randint(2, max_elems)
    universe = list(range(n))
    fam = [
        WeightedSubset(
            frozenset(rng.sample(universe, rng.randint(1, n))), rng.uniform(0.5, 8)
        )
        for _ in range(rng.randint(2, 8))
    ]
    fam.append(WeightedSubset(frozenset(universe), 16.0))
    return universe, fam


class TestLagrangian:
    def test_valid_cover(self):
        fam = subsets((["a", "b"], 2.0), (["b", "c"], 2.0), (["a", "c"], 2.0))
        cover = lagrangian_set_cover("abc", fam)
        covered = frozenset().union(*(fam[i].elements for i in cover.chosen))
        assert covered >= frozenset("abc")

    def test_empty_universe(self):
        assert lagrangian_set_cover([], []).weight == 0.0

    def test_uncoverable_raises(self):
        with pytest.raises(SetCoverError):
            lagrangian_set_cover("ab", subsets((["a"], 1.0)))

    def test_never_worse_than_greedy(self):
        # Seeded with the greedy incumbent, the Lagrangian search can only
        # improve on it.
        rng = random.Random(3)
        for _ in range(20):
            universe, fam = random_instance(rng)
            greedy = greedy_weighted_set_cover(universe, fam)
            lag = lagrangian_set_cover(universe, fam)
            assert lag.weight <= greedy.weight + 1e-9

    def test_finds_greedy_trap_optimum(self):
        # Greedy picks the two cheap singletons; the relaxation finds the
        # single cheaper pair.
        fam = subsets((["a"], 1.0), (["b"], 1.0), (["a", "b"], 1.5))
        assert lagrangian_set_cover("ab", fam).weight == pytest.approx(1.5)

    def test_close_to_optimum_on_random_instances(self):
        rng = random.Random(9)
        total_lag, total_opt = 0.0, 0.0
        for _ in range(15):
            universe, fam = random_instance(rng, max_elems=6)
            total_lag += lagrangian_set_cover(universe, fam).weight
            total_opt += exact_weighted_set_cover(universe, fam).weight
        assert total_lag <= total_opt * 1.10


class TestGenetic:
    def test_valid_cover(self):
        rng = random.Random(1)
        fam = subsets((["a", "b"], 2.0), (["b", "c"], 2.0), (["a", "c"], 2.0))
        cover = genetic_set_cover("abc", fam, rng)
        covered = frozenset().union(*(fam[i].elements for i in cover.chosen))
        assert covered >= frozenset("abc")

    def test_empty_universe(self):
        assert genetic_set_cover([], [], random.Random(1)).weight == 0.0

    def test_uncoverable_raises(self):
        with pytest.raises(SetCoverError):
            genetic_set_cover("ab", subsets((["a"], 1.0)), random.Random(1))

    def test_elitism_never_worse_than_greedy(self):
        rng = random.Random(5)
        for _ in range(8):
            universe, fam = random_instance(rng)
            greedy = greedy_weighted_set_cover(universe, fam)
            ga = genetic_set_cover(universe, fam, random.Random(7), generations=10)
            assert ga.weight <= greedy.weight + 1e-9

    def test_deterministic_for_seeded_rng(self):
        fam = subsets((["a"], 1.0), (["b"], 1.0), (["a", "b"], 1.5))
        a = genetic_set_cover("ab", fam, random.Random(4))
        b = genetic_set_cover("ab", fam, random.Random(4))
        assert a == b

    def test_escapes_greedy_trap(self):
        fam = subsets((["a"], 1.0), (["b"], 1.0), (["a", "b"], 1.5))
        ga = genetic_set_cover("ab", fam, random.Random(2), generations=20)
        assert ga.weight == pytest.approx(1.5)
